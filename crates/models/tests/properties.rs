//! Property-based tests for the operator/graph cost models.

use mlperf_models::zoo::resnet::resnet18_cifar;
use mlperf_models::{ModelGraph, Op, Optimizer, PrecisionPolicy};
use mlperf_testkit::prop::*;

/// A generator producing small random-but-valid operator graphs.
fn arb_graph() -> impl Gen<Value = ModelGraph> {
    let op = one_of(vec![
        (1usize..64, 1usize..64)
            .prop_map(|(i, o)| Op::dense(format!("fc{i}x{o}"), i, o))
            .boxed(),
        (1usize..16, 1usize..16, 8usize..32)
            .prop_map(|(ci, co, hw)| Op::conv2d(format!("c{ci}x{co}"), ci, co, 3, 1, 1, hw, hw))
            .boxed(),
        (1u64..10_000)
            .prop_map(|e| Op::activation(format!("act{e}"), e))
            .boxed(),
        (1usize..64, 1usize..128)
            .prop_map(|(c, s)| Op::batch_norm(format!("bn{c}"), c, s))
            .boxed(),
        (100usize..5000, 4usize..64, 1usize..8)
            .prop_map(|(v, d, l)| Op::embedding(format!("emb{v}"), v, d, l))
            .boxed(),
    ]);
    vec_of(op, 1usize..12).prop_map(|ops| {
        let mut g = ModelGraph::new("random");
        g.extend(ops);
        g
    })
}

mlperf_testkit::properties! {
    /// Differential battery for the vectorized cost tables: the
    /// table-backed `pass_cost` must be bit-identical to the original
    /// scalar op walk on fuzzed graphs, batches, and both policies — and
    /// so must a standalone `PassCostTable` built from the same ops.
    #[test]
    fn pass_cost_table_matches_scalar_walk(g in arb_graph(), batch in 1u64..=8192) {
        use mlperf_models::PassCostTable;
        for policy in [PrecisionPolicy::Fp32, PrecisionPolicy::Amp] {
            let scalar = g.pass_cost_scalar(batch, policy);
            prop_assert_eq!(g.pass_cost(batch, policy), scalar);
            prop_assert_eq!(PassCostTable::build(g.ops(), policy).pass_cost(batch), scalar);
        }
    }

    /// Graph mutation after pricing invalidates the cached tables: a
    /// pushed op must show up in the next pass cost.
    #[test]
    fn cached_tables_track_mutation(g in arb_graph(), batch in 1u64..256) {
        let before = g.pass_cost(batch, PrecisionPolicy::Fp32);
        let mut grown = g.clone();
        grown.push(Op::dense("appended", 32, 32));
        let after = grown.pass_cost(batch, PrecisionPolicy::Fp32);
        prop_assert!(after.total_flops() > before.total_flops());
        prop_assert_eq!(grown.pass_cost_scalar(batch, PrecisionPolicy::Fp32), after);
        // The original graph is untouched (copy-on-write).
        prop_assert_eq!(g.pass_cost(batch, PrecisionPolicy::Fp32), before);
    }

    /// FLOPs and activation traffic are exactly linear in the batch size.
    #[test]
    fn costs_linear_in_batch(g in arb_graph(), batch in 1u64..64) {
        prop_assert_eq!(
            g.fwd_flops(batch).as_u64(),
            batch * g.fwd_flops(1).as_u64()
        );
        prop_assert_eq!(
            g.training_flops(batch).as_u64(),
            batch * g.training_flops(1).as_u64()
        );
    }

    /// Backward work never undercuts forward work for standard ops.
    #[test]
    fn training_at_least_forward(g in arb_graph(), batch in 1u64..32) {
        prop_assert!(g.training_flops(batch).as_u64() >= g.fwd_flops(batch).as_u64());
    }

    /// AMP never moves more bytes than FP32 and never changes total FLOPs.
    #[test]
    fn amp_dominates_fp32_on_traffic(g in arb_graph(), batch in 1u64..32) {
        let amp = g.pass_cost(batch, PrecisionPolicy::Amp);
        let fp32 = g.pass_cost(batch, PrecisionPolicy::Fp32);
        prop_assert!(amp.mem_bytes <= fp32.mem_bytes);
        prop_assert!(amp.gradient_bytes <= fp32.gradient_bytes);
        prop_assert_eq!(amp.total_flops(), fp32.total_flops());
        // All FP32 flops stay on the SIMT pipeline.
        prop_assert_eq!(fp32.tensor_flops.as_u64(), 0);
    }

    /// The iteration cost equals pass cost plus the optimizer step.
    #[test]
    fn iteration_decomposes(g in arb_graph(), batch in 1u64..32) {
        for opt in [Optimizer::SgdMomentum, Optimizer::Adam] {
            let pass = g.pass_cost(batch, PrecisionPolicy::Amp);
            let iter = g.iteration_cost(batch, PrecisionPolicy::Amp, opt);
            prop_assert_eq!(
                iter.simt_flops.as_u64(),
                pass.simt_flops.as_u64() + opt.step_flops(g.params()).as_u64()
            );
            prop_assert_eq!(iter.tensor_flops, pass.tensor_flops);
            prop_assert_eq!(
                iter.mem_bytes.as_u64(),
                pass.mem_bytes.as_u64() + opt.step_bytes(g.params()).as_u64()
            );
        }
    }

    /// Replica footprint is monotone in batch size and in optimizer state.
    #[test]
    fn footprint_monotonicity(g in arb_graph(), batch in 1u64..64) {
        let small = g.replica_footprint(batch, PrecisionPolicy::Amp, Optimizer::SgdMomentum);
        let large = g.replica_footprint(batch + 1, PrecisionPolicy::Amp, Optimizer::SgdMomentum);
        prop_assert!(large >= small);
        let adam = g.replica_footprint(batch, PrecisionPolicy::Amp, Optimizer::Adam);
        prop_assert!(adam >= small, "Adam carries more state than SGD");
    }

    /// Kind breakdown always partitions the training FLOPs.
    #[test]
    fn breakdown_partitions(g in arb_graph(), batch in 1u64..16) {
        let total: u64 = g.kind_breakdown(batch).values().map(|f| f.as_u64()).sum();
        prop_assert_eq!(total, g.training_flops(batch).as_u64());
    }

    /// Tensor-core fraction is a fraction.
    #[test]
    fn tc_fraction_bounded(g in arb_graph()) {
        let f = g.tensor_core_fraction(4);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Gradient bytes track parameters exactly at both precisions.
    #[test]
    fn gradients_track_params(g in arb_graph(), batch in 1u64..16) {
        let amp = g.pass_cost(batch, PrecisionPolicy::Amp);
        let fp32 = g.pass_cost(batch, PrecisionPolicy::Fp32);
        prop_assert_eq!(amp.gradient_bytes.as_u64(), 2 * g.params());
        prop_assert_eq!(fp32.gradient_bytes.as_u64(), 4 * g.params());
    }
}

/// A fixed-model anchor: the CIFAR ResNet-18 obeys the same laws at a
/// realistic size (guards against the generator only covering tiny ops).
#[test]
fn realistic_model_obeys_linearity() {
    let g = resnet18_cifar();
    assert_eq!(g.fwd_flops(256).as_u64(), 256 * g.fwd_flops(1).as_u64());
    let amp = g.pass_cost(128, PrecisionPolicy::Amp);
    let fp32 = g.pass_cost(128, PrecisionPolicy::Fp32);
    assert!(amp.mem_bytes < fp32.mem_bytes);
}
