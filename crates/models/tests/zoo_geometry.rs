//! Architecture-level regression tests for the model zoo: layer geometry,
//! parameter budgets per component, and cost-structure facts that the
//! calibration relies on.

use mlperf_models::zoo::{deepbench, detection, drqa, ncf, resnet, translation};
use mlperf_models::{OpKind, PrecisionPolicy};

#[test]
fn resnet50_stage_structure() {
    let g = resnet::resnet50();
    // 53 convolutions total: stem + 3x(3,4,6,3) bottleneck convs + 4
    // projection shortcuts.
    let convs = g.ops().iter().filter(|o| o.kind() == OpKind::Conv).count();
    assert_eq!(convs, 1 + 3 * (3 + 4 + 6 + 3) + 4);
    // Exactly one classifier GEMM.
    let gemms = g.ops().iter().filter(|o| o.kind() == OpKind::Gemm).count();
    assert_eq!(gemms, 1);
    // Every conv has a batch norm.
    let norms = g.ops().iter().filter(|o| o.kind() == OpKind::Norm).count();
    assert_eq!(norms, convs);
}

#[test]
fn resnet50_parameter_budget_by_kind() {
    let g = resnet::resnet50();
    let conv_params: u64 = g
        .ops()
        .iter()
        .filter(|o| o.kind() == OpKind::Conv)
        .map(|o| o.params())
        .sum();
    let fc_params: u64 = g
        .ops()
        .iter()
        .filter(|o| o.kind() == OpKind::Gemm)
        .map(|o| o.params())
        .sum();
    // The classifier is 2048*1000 + 1000.
    assert_eq!(fc_params, 2048 * 1000 + 1000);
    // Convolutions hold ~90% of the parameters.
    assert!(conv_params as f64 > 0.88 * g.params() as f64);
}

#[test]
fn resnet18_cifar_keeps_full_resolution_stem() {
    let g = resnet::resnet18_cifar();
    // The CIFAR variant's stem is a 3x3 stride-1 conv: its output
    // activation traffic covers the full 32x32 map at 64 channels.
    let stem = &g.ops()[0];
    assert_eq!(stem.kind(), OpKind::Conv);
    assert!(stem.fwd_act_elems(1) >= (3 * 32 * 32 + 64 * 32 * 32) as u64);
}

#[test]
fn ssd_head_counts_cover_six_maps() {
    let g = detection::ssd300();
    let loc_heads = g
        .ops()
        .iter()
        .filter(|o| o.name().starts_with("loc_head"))
        .count();
    let conf_heads = g
        .ops()
        .iter()
        .filter(|o| o.name().starts_with("conf_head"))
        .count();
    assert_eq!(loc_heads, 6);
    assert_eq!(conf_heads, 6);
    assert!((8000..9500).contains(&detection::ssd300_default_boxes()));
}

#[test]
fn mask_rcnn_component_structure() {
    let g = detection::mask_rcnn();
    let names: Vec<&str> = g.ops().iter().map(|o| o.name()).collect();
    // FPN laterals and outputs at four levels.
    for i in 0..4 {
        assert!(names.contains(&format!("fpn_lateral{i}").as_str()));
        assert!(names.contains(&format!("fpn_output{i}").as_str()));
    }
    // RPN over the four FPN output levels (P6 is a stride of P5 with no
    // extra convolution in this cost model).
    for p in 2..=5 {
        assert!(names.contains(&format!("rpn_conv_p{p}").as_str()));
    }
    // Both RoIAlign stages are pure gathers (no trainable weights).
    for roi in ["roi_align_box", "roi_align_mask"] {
        let op = g.ops().iter().find(|o| o.name() == roi).expect("present");
        assert_eq!(op.params(), 0);
        assert_eq!(op.kind(), OpKind::Pool);
    }
}

#[test]
fn transformer_layer_stack_is_six_plus_six() {
    let g = translation::transformer_big();
    let enc_attn = g
        .ops()
        .iter()
        .filter(|o| o.name().contains("enc") && o.name().contains("self_attn"))
        .count();
    let dec_self = g
        .ops()
        .iter()
        .filter(|o| o.name().contains("dec") && o.name().contains("self_attn"))
        .count();
    let dec_cross = g
        .ops()
        .iter()
        .filter(|o| o.name().contains("cross_attn"))
        .count();
    assert_eq!(enc_attn, 6);
    assert_eq!(dec_self, 6);
    assert_eq!(dec_cross, 6);
    // The shared-embedding logits GEMM carries no extra parameters.
    let logits = g
        .ops()
        .iter()
        .find(|o| o.name() == "logits")
        .expect("present");
    assert_eq!(logits.params(), 0);
}

#[test]
fn gnmt_encoder_is_bidirectional_only_at_layer_zero() {
    let g = translation::gnmt();
    assert!(g.ops().iter().any(|o| o.name() == "enc0_fwd"));
    assert!(g.ops().iter().any(|o| o.name() == "enc0_bwd"));
    assert!(!g.ops().iter().any(|o| o.name() == "enc1_bwd"));
    // Decoder stack: dec0..dec3.
    for l in 0..4 {
        assert!(g.ops().iter().any(|o| o.name() == format!("dec{l}")));
    }
}

#[test]
fn ncf_embedding_tables_match_movielens() {
    let g = ncf::ncf();
    let emb_params: u64 = g
        .ops()
        .iter()
        .filter(|o| o.kind() == OpKind::Embedding)
        .map(|o| o.params())
        .sum();
    let expected =
        (ncf::USERS + ncf::ITEMS) as u64 * (ncf::MF_DIM as u64 + (ncf::MLP_LAYERS[0] / 2) as u64);
    assert_eq!(emb_params, expected);
}

#[test]
fn drqa_has_six_bilstm_sweeps_per_encoder() {
    let g = drqa::drqa();
    let doc = g
        .ops()
        .iter()
        .filter(|o| o.name().starts_with("doc_lstm"))
        .count();
    let q = g
        .ops()
        .iter()
        .filter(|o| o.name().starts_with("q_lstm"))
        .count();
    assert_eq!(doc, 6, "3 layers x 2 directions");
    assert_eq!(q, 6);
    // Span prediction has start and end heads.
    assert!(g.ops().iter().any(|o| o.name() == "span_start"));
    assert!(g.ops().iter().any(|o| o.name() == "span_end"));
}

#[test]
fn deepbench_kernels_have_expected_precision_behaviour() {
    // FP32 pricing of a GEMM kernel moves 2x the bytes of AMP pricing.
    let k = &deepbench::gemm_kernels()[0];
    let g = k.as_graph();
    let fp32 = g.pass_cost(k.batch, PrecisionPolicy::Fp32);
    let amp = g.pass_cost(k.batch, PrecisionPolicy::Amp);
    assert_eq!(fp32.mem_bytes.as_u64(), 2 * amp.mem_bytes.as_u64());
}

#[test]
fn model_scale_ordering_is_sane() {
    // Parameter counts order as the literature says.
    let params = |g: &mlperf_models::ModelGraph| g.params();
    let resnet18 = resnet::resnet18_cifar();
    let resnet50 = resnet::resnet50();
    let xfmr = translation::transformer_big();
    let gnmt = translation::gnmt();
    assert!(params(&resnet18) < params(&resnet50));
    assert!(params(&resnet50) < params(&gnmt));
    assert!(params(&gnmt) < params(&xfmr));
}

#[test]
fn per_sample_compute_ordering_is_sane() {
    // MRCNN >> SSD >> ResNet-50 >> NCF per sample.
    let fwd = |g: &mlperf_models::ModelGraph| g.fwd_flops(1).as_f64();
    assert!(fwd(&detection::mask_rcnn()) > 10.0 * fwd(&detection::ssd300()));
    assert!(fwd(&detection::ssd300()) > fwd(&resnet::resnet50()));
    assert!(fwd(&resnet::resnet50()) > 1000.0 * fwd(&ncf::ncf()));
}
