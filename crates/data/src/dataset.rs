//! Dataset models for every corpus the study trains on.
//!
//! Datasets enter the paper's measurements through four quantities:
//!
//! * **sample count** — with epochs-to-target, fixes total training volume;
//! * **on-disk size** — drives host DRAM staging footprints (§V-C notes
//!   ImageNet at ~300 GB cannot be GPU-resident);
//! * **per-sample host preprocessing cost** — drives CPU utilization (§V-A:
//!   image benchmarks "require CPU to perform more packaging of the data");
//! * **per-sample device bytes** — drives H2D PCIe traffic.
//!
//! We model exactly those attributes; [`synthetic`](crate::synthetic)
//! generates bit-exact stand-in records for code paths that want real bytes.

use mlperf_hw::units::Bytes;
use std::fmt;

/// The corpora of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetId {
    /// ImageNet ILSVRC-2012 classification training split.
    ImageNet,
    /// Microsoft COCO 2017 detection training split.
    Coco,
    /// WMT17 English-German parallel corpus.
    Wmt17,
    /// MovieLens 20-million ratings.
    MovieLens20M,
    /// CIFAR-10 training split.
    Cifar10,
    /// SQuAD v1.1 training split.
    Squad,
}

impl DatasetId {
    /// All datasets used in the study.
    pub const ALL: [DatasetId; 6] = [
        DatasetId::ImageNet,
        DatasetId::Coco,
        DatasetId::Wmt17,
        DatasetId::MovieLens20M,
        DatasetId::Cifar10,
        DatasetId::Squad,
    ];

    /// The full dataset specification.
    pub fn spec(self) -> DatasetSpec {
        match self {
            DatasetId::ImageNet => DatasetSpec {
                id: self,
                name: "ImageNet",
                samples: 1_281_167,
                // Raw JPEGs are ~140 GB; the paper's ~300 GB reflects the
                // packaged training copies (TFRecords + resized variants)
                // the submissions stage on disk.
                on_disk: Bytes::from_gib(300),
                // JPEG decode + crop + augment: the heaviest per-sample
                // host work of the suite (reference-core-seconds).
                host_cost_core_secs: 0.004,
            },
            DatasetId::Coco => DatasetSpec {
                id: self,
                name: "Microsoft COCO",
                samples: 118_287,
                on_disk: Bytes::from_gib(19),
                // Larger images plus annotation/mask handling.
                host_cost_core_secs: 0.008,
            },
            DatasetId::Wmt17 => DatasetSpec {
                id: self,
                name: "WMT17 En-De",
                samples: 4_500_000,
                on_disk: Bytes::from_gib_f64(1.4),
                // Tokenized text: trivial host work per pair.
                host_cost_core_secs: 0.0006,
            },
            DatasetId::MovieLens20M => DatasetSpec {
                id: self,
                name: "MovieLens 20-million",
                samples: 19_861_770, // positive interactions after filtering
                on_disk: Bytes::from_mib(500),
                // Negative sampling is a random-integer draw.
                host_cost_core_secs: 0.000_000_2,
            },
            DatasetId::Cifar10 => DatasetSpec {
                id: self,
                name: "CIFAR10",
                samples: 50_000,
                on_disk: Bytes::from_mib(150),
                host_cost_core_secs: 0.000_8,
            },
            DatasetId::Squad => DatasetSpec {
                id: self,
                name: "SQuAD",
                samples: 87_599,
                on_disk: Bytes::from_mib(35),
                // DrQA's host-side feature engineering (tokenize, TF,
                // exact-match, POS/NER) is why Table V shows it at ~49 %
                // CPU and ~20 % GPU.
                host_cost_core_secs: 0.10,
            },
        }
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// The measured attributes of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    id: DatasetId,
    name: &'static str,
    samples: u64,
    on_disk: Bytes,
    host_cost_core_secs: f64,
}

impl DatasetSpec {
    /// Which dataset this is.
    pub fn id(&self) -> DatasetId {
        self.id
    }

    /// Human-readable name as printed in Table II.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of training samples.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Total staged on-disk size of the training copy.
    pub fn on_disk(&self) -> Bytes {
        self.on_disk
    }

    /// Average stored bytes per sample.
    pub fn bytes_per_sample(&self) -> Bytes {
        Bytes::new(self.on_disk.as_u64() / self.samples)
    }

    /// Host preprocessing cost per sample, in *reference-core-seconds*
    /// (seconds on one core of a 1 GHz reference; divide by a CPU's
    /// [`preprocess_capacity`](mlperf_hw::CpuSpec::preprocess_capacity)
    /// to get wall-clock seconds at full-socket parallelism).
    pub fn host_cost_core_secs(&self) -> f64 {
        self.host_cost_core_secs
    }
}

impl fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} samples, {})",
            self.name, self.samples, self.on_disk
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_matches_paper_scale() {
        let spec = DatasetId::ImageNet.spec();
        assert_eq!(spec.samples(), 1_281_167);
        // §V-A: "around 300GB".
        assert!((spec.on_disk().as_gib() - 300.0).abs() < 1.0);
    }

    #[test]
    fn movielens_is_the_small_dataset() {
        // §IV-D blames NCF's poor scaling on the small dataset.
        let ml = DatasetId::MovieLens20M.spec().on_disk();
        for other in [DatasetId::ImageNet, DatasetId::Coco, DatasetId::Wmt17] {
            assert!(ml < other.spec().on_disk(), "{other:?}");
        }
    }

    #[test]
    fn squad_has_the_heaviest_host_cost() {
        let squad = DatasetId::Squad.spec().host_cost_core_secs();
        for other in DatasetId::ALL {
            if other != DatasetId::Squad {
                assert!(squad > other.spec().host_cost_core_secs(), "{other:?}");
            }
        }
    }

    #[test]
    fn image_datasets_cost_more_host_work_than_text() {
        let imagenet = DatasetId::ImageNet.spec().host_cost_core_secs();
        assert!(imagenet > DatasetId::Wmt17.spec().host_cost_core_secs());
        assert!(imagenet > DatasetId::MovieLens20M.spec().host_cost_core_secs());
    }

    #[test]
    fn bytes_per_sample_is_consistent() {
        for id in DatasetId::ALL {
            let spec = id.spec();
            let implied = spec.bytes_per_sample().as_u64() * spec.samples();
            let slack = spec.on_disk().as_u64() / 100;
            assert!(
                implied.abs_diff(spec.on_disk().as_u64()) <= slack + spec.samples(),
                "{id:?}"
            );
        }
    }

    #[test]
    fn all_datasets_display() {
        for id in DatasetId::ALL {
            assert!(!id.to_string().is_empty());
        }
    }
}
