//! Dataset and input-pipeline substrate.
//!
//! The study's corpora ([`dataset`]) are modeled by the four attributes its
//! measurements depend on (sample count, staged size, host preprocessing
//! cost, device bytes); [`loader`] composes them into the host→GPU input
//! pipeline the simulator overlaps with compute; [`synthetic`] generates
//! reproducible stand-in records for code paths that want real bytes.
//!
//! # Examples
//!
//! ```
//! use mlperf_data::{DatasetId, InputPipeline};
//! use mlperf_hw::units::Bytes;
//!
//! let pipe = InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 4));
//! assert_eq!(pipe.h2d_bytes_per_batch(2).as_u64(), 2 * 224 * 224 * 3 * 4);
//! ```

pub mod dataset;
pub mod loader;
pub mod shards;
pub mod storage;
pub mod synthetic;

pub use dataset::{DatasetId, DatasetSpec};
pub use loader::InputPipeline;
pub use shards::{plan_shards, shuffle_order, EpochReader, Shard, ShardError};
pub use storage::{ReadPattern, StagingPlan, StorageDevice};
pub use synthetic::{Record, SyntheticDataset};
