//! The input-pipeline model: host staging → preprocessing → H2D copy.
//!
//! Every iteration, the host must (1) fetch the batch's records from the
//! staged dataset in DRAM, (2) preprocess them on CPU worker threads, and
//! (3) ship the device-ready tensors over PCIe. The simulator overlaps this
//! pipeline with GPU compute double-buffered, so an iteration stalls on the
//! host only when the pipeline is slower than the device step — exactly the
//! "CPU must have adequate performance to keep all GPUs busy" effect of
//! §V-A.

use crate::dataset::DatasetId;
use mlperf_hw::units::{Bytes, Seconds};
use mlperf_hw::CpuSpec;
use std::fmt;

/// Fraction of a socket's cores the framework's data-loader workers may
/// occupy (frameworks default to a handful of worker processes; the trainer
/// process and OS need the rest).
const LOADER_CORE_FRACTION: f64 = 0.85;

/// An input pipeline feeding one training job.
#[derive(Debug, Clone, PartialEq)]
pub struct InputPipeline {
    dataset: DatasetId,
    device_bytes_per_sample: Bytes,
    host_cost_multiplier: f64,
}

impl InputPipeline {
    /// Build a pipeline for a dataset shipping `device_bytes_per_sample`
    /// to the GPU per sample (the post-preprocess tensor size).
    pub fn new(dataset: DatasetId, device_bytes_per_sample: Bytes) -> Self {
        InputPipeline {
            dataset,
            device_bytes_per_sample,
            host_cost_multiplier: 1.0,
        }
    }

    /// Scale the dataset's base host cost (e.g. heavier augmentation in a
    /// particular submission, or DrQA's featurization on top of SQuAD).
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is negative or not finite.
    pub fn with_host_cost_multiplier(mut self, multiplier: f64) -> Self {
        assert!(
            multiplier.is_finite() && multiplier >= 0.0,
            "host cost multiplier must be finite and non-negative"
        );
        self.host_cost_multiplier = multiplier;
        self
    }

    /// The dataset this pipeline reads.
    pub fn dataset(&self) -> DatasetId {
        self.dataset
    }

    /// Device-ready bytes shipped per sample.
    pub fn device_bytes_per_sample(&self) -> Bytes {
        self.device_bytes_per_sample
    }

    /// Host preprocessing cost per sample in reference-core-seconds.
    pub fn host_cost_core_secs(&self) -> f64 {
        self.dataset.spec().host_cost_core_secs() * self.host_cost_multiplier
    }

    /// Wall-clock host time to preprocess one batch on a socket, assuming
    /// the loader workers use a fixed fraction (85 %) of its capacity.
    pub fn host_time_per_batch(&self, cpu: &CpuSpec, batch: u64) -> Seconds {
        let capacity = cpu.preprocess_capacity() * LOADER_CORE_FRACTION;
        Seconds::new(self.host_cost_core_secs() * batch as f64 / capacity)
    }

    /// Core-seconds of host work per batch (for CPU-utilization accounting:
    /// this much busy time lands on the socket regardless of parallelism).
    pub fn host_core_secs_per_batch(&self, batch: u64) -> f64 {
        self.host_cost_core_secs() * batch as f64
    }

    /// Bytes copied host-to-device for one batch.
    pub fn h2d_bytes_per_batch(&self, batch: u64) -> Bytes {
        self.device_bytes_per_sample * batch
    }

    /// Host DRAM staging footprint for this pipeline: the working set of
    /// shuffled/prefetched records plus decode buffers, bounded by the
    /// dataset itself. `pipeline_depth` is the number of in-flight batches.
    pub fn staging_footprint(&self, batch: u64, pipeline_depth: u64) -> Bytes {
        let raw = self.dataset.spec().bytes_per_sample() * batch * pipeline_depth;
        let decoded = self.device_bytes_per_sample * batch * pipeline_depth;
        (raw + decoded).min(self.dataset.spec().on_disk())
    }
}

impl fmt::Display for InputPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pipeline ({}/sample to device)",
            self.dataset, self.device_bytes_per_sample
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_hw::CpuModel;

    fn imagenet_pipeline() -> InputPipeline {
        // 224x224x3 FP32 tensor per sample.
        InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 4))
    }

    #[test]
    fn host_time_scales_with_batch() {
        let p = imagenet_pipeline();
        let cpu = CpuModel::XeonGold6148.spec();
        let t64 = p.host_time_per_batch(&cpu, 64);
        let t128 = p.host_time_per_batch(&cpu, 128);
        assert!((t128.as_secs() / t64.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_socket_preprocesses_faster() {
        let p = imagenet_pipeline();
        let big = CpuModel::XeonGold6148.spec(); // 20c @ 2.4 = 48
        let small = CpuModel::XeonGold6142.spec(); // 16c @ 2.6 = 41.6
        assert!(
            p.host_time_per_batch(&big, 256).as_secs()
                < p.host_time_per_batch(&small, 256).as_secs()
        );
    }

    #[test]
    fn h2d_volume_is_exact() {
        let p = imagenet_pipeline();
        assert_eq!(
            p.h2d_bytes_per_batch(32),
            Bytes::new(32 * 224 * 224 * 3 * 4)
        );
    }

    #[test]
    fn cost_multiplier_applies() {
        let base = imagenet_pipeline();
        let heavy = imagenet_pipeline().with_host_cost_multiplier(3.0);
        assert!((heavy.host_cost_core_secs() / base.host_cost_core_secs() - 3.0).abs() < 1e-12);
        assert_eq!(
            heavy.host_core_secs_per_batch(10),
            30.0 * base.host_cost_core_secs()
        );
    }

    #[test]
    fn staging_footprint_bounded_by_dataset() {
        let tiny = InputPipeline::new(DatasetId::Cifar10, Bytes::new(32 * 32 * 3 * 4));
        // Absurd prefetch depth cannot stage more than the dataset.
        let fp = tiny.staging_footprint(50_000, 1000);
        assert!(fp <= DatasetId::Cifar10.spec().on_disk());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_multiplier_rejected() {
        let _ = imagenet_pipeline().with_host_cost_multiplier(-1.0);
    }
}
