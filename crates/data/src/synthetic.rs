//! Synthetic sample generators.
//!
//! The substitution rule for this reproduction: where the paper used
//! proprietary-scale corpora we cannot stage (300 GB of ImageNet), we
//! generate records with the same statistical envelope — sizes drawn around
//! the dataset's per-sample mean, contents pseudo-random. Examples and tests
//! use these to exercise real byte-moving code paths instead of `assume the
//! data exists` placeholders.
//!
//! Record `i` is generated from its own RNG stream ([`Rng::stream`] of
//! `(seed, i)`), so generation is random-access: the bytes of record `i`
//! are a pure function of `(dataset, seed, i)` regardless of the order —
//! or how many times — records are produced.

use crate::dataset::{DatasetId, DatasetSpec};
use mlperf_testkit::rng::Rng;

/// A deterministic generator of synthetic records for one dataset.
#[derive(Debug)]
pub struct SyntheticDataset {
    spec: DatasetSpec,
    seed: u64,
}

/// A generated record: an opaque payload plus a label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Sample ordinal within the epoch.
    pub index: u64,
    /// The encoded payload (stands in for a JPEG / sentence pair / rating).
    pub payload: Vec<u8>,
    /// An integer label (class id, rating, answer span start, ...).
    pub label: u32,
}

impl SyntheticDataset {
    /// Create a generator with a fixed seed (fully reproducible).
    pub fn new(dataset: DatasetId, seed: u64) -> Self {
        SyntheticDataset {
            spec: dataset.spec(),
            seed,
        }
    }

    /// The dataset being synthesized.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Generate the record at `index`. Payload sizes vary ±25 % around the
    /// dataset's per-sample mean, like real encoded data.
    pub fn record(&mut self, index: u64) -> Record {
        let mut rng = Rng::stream(self.seed, index);
        let mean = self.spec.bytes_per_sample().as_u64().max(1);
        let lo = mean - mean / 4;
        let hi = mean + mean / 4;
        let len = rng.gen_range(lo..=hi) as usize;
        let mut payload = vec![0u8; len];
        // Fill a prefix with noise: enough to defeat trivial compression in
        // downstream code without paying for gigabytes of RNG output.
        let noisy = len.min(4096);
        rng.fill_bytes(&mut payload[..noisy]);
        let label = rng.gen_range(0u32..1000);
        Record {
            index,
            payload,
            label,
        }
    }

    /// An iterator over the first `n` records of an epoch.
    pub fn take(&mut self, n: u64) -> Vec<Record> {
        (0..n).map(|i| self.record(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = SyntheticDataset::new(DatasetId::Cifar10, 42);
        let mut b = SyntheticDataset::new(DatasetId::Cifar10, 42);
        assert_eq!(a.record(0), b.record(0));
        assert_eq!(a.take(5), b.take(5));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SyntheticDataset::new(DatasetId::Cifar10, 1);
        let mut b = SyntheticDataset::new(DatasetId::Cifar10, 2);
        assert_ne!(a.record(0).payload, b.record(0).payload);
    }

    #[test]
    fn records_are_random_access() {
        // Record i depends only on (seed, i), not on generation order.
        let mut g = SyntheticDataset::new(DatasetId::Wmt17, 9);
        let forward: Vec<Record> = g.take(8);
        for i in (0..8).rev() {
            assert_eq!(g.record(i), forward[i as usize]);
        }
    }

    #[test]
    fn payload_sizes_track_dataset_mean() {
        let mut g = SyntheticDataset::new(DatasetId::ImageNet, 7);
        let mean = DatasetId::ImageNet.spec().bytes_per_sample().as_u64();
        for r in g.take(20) {
            let len = r.payload.len() as u64;
            assert!(len >= mean - mean / 4 && len <= mean + mean / 4);
        }
    }

    #[test]
    fn labels_are_bounded() {
        let mut g = SyntheticDataset::new(DatasetId::MovieLens20M, 3);
        assert!(g.take(50).iter().all(|r| r.label < 1000));
    }
}
