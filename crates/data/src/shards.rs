//! Sharded record files: the TFRecord-style packaging the submissions
//! stage their datasets in.
//!
//! The ImageNet copy the paper calls "around 300GB" is not loose JPEGs but
//! packed shard files. This module implements the byte format — length-
//! prefixed, checksummed records — plus shard planning and a seeded
//! shard-shuffling reader, so the pipeline's staging behaviour runs over
//! real bytes in tests and examples.

use crate::synthetic::Record;
use std::fmt;

/// Per-record framing: `len: u32 LE | label: u32 LE | payload | crc: u32 LE`.
const HEADER_BYTES: usize = 8;
const TRAILER_BYTES: usize = 4;

/// A simple rolling checksum (FNV-1a, 32-bit) over the payload; the
/// implementation lives in [`mlperf_testkit::hash`] with its reference
/// vectors, shared across the workspace.
fn checksum(bytes: &[u8]) -> u32 {
    mlperf_testkit::hash::fnv1a32(bytes)
}

/// Errors from shard decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The buffer ended mid-record.
    Truncated {
        /// Byte offset of the bad record's start.
        offset: usize,
    },
    /// A record's checksum did not match its payload.
    Corrupt {
        /// Index of the corrupt record within the shard.
        record: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Truncated { offset } => {
                write!(
                    f,
                    "shard truncated inside the record starting at byte {offset}"
                )
            }
            ShardError::Corrupt { record } => write!(f, "record {record} fails its checksum"),
        }
    }
}

impl std::error::Error for ShardError {}

/// An encoded shard: a byte buffer of framed records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Shard {
    bytes: Vec<u8>,
    records: usize,
}

impl Shard {
    /// An empty shard.
    pub fn new() -> Self {
        Shard::default()
    }

    /// Append one record.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds `u32::MAX` bytes.
    pub fn push(&mut self, record: &Record) {
        let len = u32::try_from(record.payload.len()).expect("payload fits a u32 length");
        self.bytes.extend_from_slice(&len.to_le_bytes());
        self.bytes.extend_from_slice(&record.label.to_le_bytes());
        self.bytes.extend_from_slice(&record.payload);
        self.bytes
            .extend_from_slice(&checksum(&record.payload).to_le_bytes());
        self.records += 1;
    }

    /// Number of records framed in this shard.
    pub fn len(&self) -> usize {
        self.records
    }

    /// Whether the shard holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Decode every record, validating framing and checksums.
    ///
    /// # Errors
    ///
    /// [`ShardError::Truncated`] on a short buffer, [`ShardError::Corrupt`]
    /// on a checksum mismatch.
    pub fn decode(&self) -> Result<Vec<(u32, Vec<u8>)>, ShardError> {
        Self::decode_bytes(&self.bytes)
    }

    /// Reconstitute a shard from raw bytes read back from storage. The
    /// record count is trusted from the caller; framing is validated only
    /// when the shard is decoded.
    pub fn from_raw_parts(bytes: Vec<u8>, records: usize) -> Self {
        Shard { bytes, records }
    }

    /// Decode a raw buffer (e.g. read back from storage).
    ///
    /// # Errors
    ///
    /// As [`Shard::decode`].
    pub fn decode_bytes(bytes: &[u8]) -> Result<Vec<(u32, Vec<u8>)>, ShardError> {
        let mut out = Vec::new();
        let mut offset = 0usize;
        while offset < bytes.len() {
            let start = offset;
            if bytes.len() - offset < HEADER_BYTES {
                return Err(ShardError::Truncated { offset: start });
            }
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            let label =
                u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
            offset += HEADER_BYTES;
            if bytes.len() - offset < len + TRAILER_BYTES {
                return Err(ShardError::Truncated { offset: start });
            }
            let payload = &bytes[offset..offset + len];
            offset += len;
            let stored = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
            offset += TRAILER_BYTES;
            if stored != checksum(payload) {
                return Err(ShardError::Corrupt { record: out.len() });
            }
            out.push((label, payload.to_vec()));
        }
        Ok(out)
    }
}

/// Plan how many shards a dataset needs at a target shard size, and how
/// records distribute (the last shard takes the remainder).
///
/// # Panics
///
/// Panics if either argument is zero.
pub fn plan_shards(total_records: u64, records_per_shard: u64) -> Vec<u64> {
    assert!(total_records > 0, "need at least one record");
    assert!(
        records_per_shard > 0,
        "shards must hold at least one record"
    );
    let full = total_records / records_per_shard;
    let rem = total_records % records_per_shard;
    let mut plan = vec![records_per_shard; full as usize];
    if rem > 0 {
        plan.push(rem);
    }
    plan
}

/// A deterministic shard-order shuffle (Fisher-Yates with an xorshift
/// stream) — the "shuffled at shard level" read order sequential staging
/// uses.
pub fn shuffle_order(shards: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards).collect();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..order.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// An epoch reader: iterates a set of shards in a seeded shuffled order,
/// decoding records shard by shard — the sequential-shard access pattern
/// [`StagingPlan`](crate::storage::StagingPlan) prices.
#[derive(Debug)]
pub struct EpochReader<'a> {
    shards: &'a [Shard],
    order: Vec<usize>,
    shard_pos: usize,
    decoded: Vec<(u32, Vec<u8>)>,
    record_pos: usize,
}

impl<'a> EpochReader<'a> {
    /// Start an epoch over `shards` with shard-level shuffling by `seed`.
    pub fn new(shards: &'a [Shard], seed: u64) -> Self {
        EpochReader {
            shards,
            order: shuffle_order(shards.len(), seed),
            shard_pos: 0,
            decoded: Vec::new(),
            record_pos: 0,
        }
    }

    /// The shard visit order this epoch uses.
    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

impl Iterator for EpochReader<'_> {
    type Item = Result<(u32, Vec<u8>), ShardError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.record_pos < self.decoded.len() {
                let item = self.decoded[self.record_pos].clone();
                self.record_pos += 1;
                return Some(Ok(item));
            }
            if self.shard_pos >= self.order.len() {
                return None;
            }
            let shard = &self.shards[self.order[self.shard_pos]];
            self.shard_pos += 1;
            self.record_pos = 0;
            match shard.decode() {
                Ok(records) => self.decoded = records,
                Err(e) => {
                    self.decoded = Vec::new();
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetId;
    use crate::synthetic::SyntheticDataset;

    #[test]
    fn encode_decode_round_trip() {
        let mut gen = SyntheticDataset::new(DatasetId::Cifar10, 11);
        let records = gen.take(20);
        let mut shard = Shard::new();
        for r in &records {
            shard.push(r);
        }
        assert_eq!(shard.len(), 20);
        let decoded = shard.decode().expect("valid shard");
        assert_eq!(decoded.len(), 20);
        for (r, (label, payload)) in records.iter().zip(&decoded) {
            assert_eq!(r.label, *label);
            assert_eq!(&r.payload, payload);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut gen = SyntheticDataset::new(DatasetId::Cifar10, 12);
        let mut shard = Shard::new();
        for r in gen.take(3) {
            shard.push(&r);
        }
        let mut bytes = shard.as_bytes().to_vec();
        // Flip a payload byte of the second record.
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_payload_start = HEADER_BYTES + first_len + TRAILER_BYTES + HEADER_BYTES;
        bytes[second_payload_start] ^= 0xff;
        let err = Shard::decode_bytes(&bytes).expect_err("corruption must surface");
        assert_eq!(err, ShardError::Corrupt { record: 1 });
    }

    #[test]
    fn truncation_is_detected() {
        let mut gen = SyntheticDataset::new(DatasetId::Cifar10, 13);
        let mut shard = Shard::new();
        for r in gen.take(2) {
            shard.push(&r);
        }
        let bytes = &shard.as_bytes()[..shard.byte_len() - 3];
        assert!(matches!(
            Shard::decode_bytes(bytes),
            Err(ShardError::Truncated { .. })
        ));
    }

    #[test]
    fn shard_plan_covers_every_record() {
        let plan = plan_shards(1_281_167, 1024);
        let total: u64 = plan.iter().sum();
        assert_eq!(total, 1_281_167);
        assert_eq!(plan.len(), 1252);
        assert!(plan[..plan.len() - 1].iter().all(|&n| n == 1024));
        assert_eq!(*plan.last().unwrap(), 1_281_167 % 1024);
    }

    #[test]
    fn shuffle_is_a_deterministic_permutation() {
        let a = shuffle_order(100, 7);
        let b = shuffle_order(100, 7);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        let c = shuffle_order(100, 8);
        assert_ne!(a, c, "different seeds shuffle differently");
    }

    #[test]
    fn empty_shard_decodes_empty() {
        let shard = Shard::new();
        assert!(shard.is_empty());
        assert_eq!(shard.decode().expect("valid"), Vec::new());
    }

    #[test]
    fn epoch_reader_visits_every_record_exactly_once() {
        let mut gen = SyntheticDataset::new(DatasetId::Cifar10, 21);
        let mut shards = Vec::new();
        let mut total = 0usize;
        for _ in 0..5 {
            let mut shard = Shard::new();
            for r in gen.take(7) {
                shard.push(&r);
                total += 1;
            }
            shards.push(shard);
        }
        let records: Vec<_> = EpochReader::new(&shards, 3)
            .collect::<Result<Vec<_>, _>>()
            .expect("all shards valid");
        assert_eq!(records.len(), total);
        // Two epochs with different seeds visit shards differently…
        let a = EpochReader::new(&shards, 3).order().to_vec();
        let b = EpochReader::new(&shards, 4).order().to_vec();
        assert_ne!(a, b);
        // …but the same seed is reproducible.
        let c = EpochReader::new(&shards, 3).order().to_vec();
        assert_eq!(a, c);
    }

    #[test]
    fn epoch_reader_surfaces_corruption_and_continues() {
        let mut gen = SyntheticDataset::new(DatasetId::Cifar10, 22);
        let mut good = Shard::new();
        for r in gen.take(3) {
            good.push(&r);
        }
        let mut bad = Shard::new();
        for r in gen.take(2) {
            bad.push(&r);
        }
        // Corrupt the bad shard via byte surgery, then reconstitute.
        let mut bytes = bad.as_bytes().to_vec();
        let n = bytes.len();
        bytes[n - 5] ^= 0xff;
        let bad = Shard::from_raw_parts(bytes, bad.len());
        let shards = vec![good.clone(), bad, good];
        let results: Vec<_> = EpochReader::new(&shards, 1).collect();
        let errors = results.iter().filter(|r| r.is_err()).count();
        let oks = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(errors, 1, "the corrupt shard errors once");
        assert_eq!(oks, 6, "the good shards still stream");
    }
}
