//! Storage staging: can the disk and DRAM keep the training run fed?
//!
//! §V-C: "in an extreme case, the dataset can be too large to be stored
//! inside the system memory. Thus the disk storage is used ... and the CPU
//! is responsible for coordinating the switching between each part of the
//! dataset." This module models that tier: device read rates, the
//! DRAM-cacheable fraction, and the sustained read rate one epoch demands.

use crate::dataset::DatasetId;
use mlperf_hw::units::{Bandwidth, Bytes, Seconds};
use std::fmt;

/// Storage device classes of the study's era.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageDevice {
    /// 7.2k-RPM SATA hard drive.
    Hdd,
    /// SATA solid-state drive.
    SataSsd,
    /// NVMe solid-state drive.
    NvmeSsd,
}

impl StorageDevice {
    /// Sustained sequential read bandwidth.
    pub fn sequential_read(self) -> Bandwidth {
        match self {
            StorageDevice::Hdd => Bandwidth::from_mb_per_sec(180.0),
            StorageDevice::SataSsd => Bandwidth::from_mb_per_sec(520.0),
            StorageDevice::NvmeSsd => Bandwidth::from_gb_per_sec(3.2),
        }
    }

    /// Sustained random-read bandwidth at training-record sizes.
    pub fn random_read(self) -> Bandwidth {
        match self {
            // Seek-dominated: two orders below sequential.
            StorageDevice::Hdd => Bandwidth::from_mb_per_sec(2.0),
            StorageDevice::SataSsd => Bandwidth::from_mb_per_sec(320.0),
            StorageDevice::NvmeSsd => Bandwidth::from_gb_per_sec(2.4),
        }
    }

    /// Sustained sequential write bandwidth — what a checkpoint dump sees.
    /// Writes trail reads on every class (erase-block overhead on flash,
    /// platter verify on disk).
    pub fn sequential_write(self) -> Bandwidth {
        match self {
            StorageDevice::Hdd => Bandwidth::from_mb_per_sec(160.0),
            StorageDevice::SataSsd => Bandwidth::from_mb_per_sec(480.0),
            StorageDevice::NvmeSsd => Bandwidth::from_gb_per_sec(2.0),
        }
    }
}

impl fmt::Display for StorageDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StorageDevice::Hdd => "HDD",
            StorageDevice::SataSsd => "SATA SSD",
            StorageDevice::NvmeSsd => "NVMe SSD",
        };
        f.write_str(s)
    }
}

/// How the input pipeline reads the staged dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadPattern {
    /// Sequential shard sweeps (TFRecord-style, shuffled at shard level).
    SequentialShards,
    /// Fully random per-record access.
    RandomRecords,
}

/// The verdict on one (dataset, DRAM, device) staging configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StagingPlan {
    /// Dataset staged.
    pub dataset: DatasetId,
    /// Bytes of the dataset resident in the page cache at steady state.
    pub cached: Bytes,
    /// Bytes re-read from the device every epoch.
    pub disk_bytes_per_epoch: Bytes,
    /// The sustained device read rate one epoch of the given length needs.
    pub required: Bandwidth,
    /// What the device supplies under the chosen pattern.
    pub supplied: Bandwidth,
}

impl StagingPlan {
    /// Plan staging for `dataset` on a host with `dram_for_cache` available
    /// page-cache bytes, reading with `pattern` from `device`, given the
    /// epoch wall-clock the accelerator side achieves.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_time` is zero.
    pub fn new(
        dataset: DatasetId,
        dram_for_cache: Bytes,
        device: StorageDevice,
        pattern: ReadPattern,
        epoch_time: Seconds,
    ) -> Self {
        assert!(epoch_time.as_secs() > 0.0, "epoch time must be positive");
        let total = dataset.spec().on_disk();
        let cached = if dram_for_cache >= total {
            total
        } else {
            dram_for_cache
        };
        let disk_bytes_per_epoch = total - cached;
        let required = if disk_bytes_per_epoch == Bytes::ZERO {
            Bandwidth::ZERO
        } else {
            disk_bytes_per_epoch / epoch_time
        };
        let supplied = match pattern {
            ReadPattern::SequentialShards => device.sequential_read(),
            ReadPattern::RandomRecords => device.random_read(),
        };
        StagingPlan {
            dataset,
            cached,
            disk_bytes_per_epoch,
            required,
            supplied,
        }
    }

    /// Whether the device keeps up (no input-bound stall from storage).
    pub fn keeps_up(&self) -> bool {
        self.required.as_bytes_per_sec() <= self.supplied.as_bytes_per_sec()
    }

    /// The factor by which the epoch stretches when the device is the
    /// bottleneck (1.0 when it keeps up).
    pub fn slowdown(&self) -> f64 {
        if self.keeps_up() || self.required == Bandwidth::ZERO {
            1.0
        } else {
            self.required.as_bytes_per_sec() / self.supplied.as_bytes_per_sec()
        }
    }
}

impl fmt::Display for StagingPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cached, {} from disk/epoch; needs {}, device gives {} ({})",
            self.dataset,
            self.cached,
            self.disk_bytes_per_epoch,
            self.required,
            self.supplied,
            if self.keeps_up() {
                "keeps up"
            } else {
                "storage-bound"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_datasets_cache_entirely() {
        // CIFAR10 (150 MB) fits in any host: zero disk traffic.
        let plan = StagingPlan::new(
            DatasetId::Cifar10,
            Bytes::from_gib(64),
            StorageDevice::Hdd,
            ReadPattern::RandomRecords,
            Seconds::from_minutes(1.0),
        );
        assert_eq!(plan.disk_bytes_per_epoch, Bytes::ZERO);
        assert!(plan.keeps_up());
        assert_eq!(plan.slowdown(), 1.0);
    }

    #[test]
    fn imagenet_overflows_the_c4140_dram() {
        // 300 GB dataset vs ~150 GB of cacheable DRAM: half re-reads from
        // disk every epoch — the §V-C scenario.
        let plan = StagingPlan::new(
            DatasetId::ImageNet,
            Bytes::from_gib(150),
            StorageDevice::NvmeSsd,
            ReadPattern::SequentialShards,
            Seconds::from_minutes(13.0), // ~a ResNet-50 epoch on 8 GPUs
        );
        assert_eq!(plan.disk_bytes_per_epoch, Bytes::from_gib(150));
        // 150 GiB / 13 min ≈ 207 MB/s: NVMe keeps up comfortably.
        assert!(plan.keeps_up());
        assert!(plan.required.as_gb_per_sec() > 0.15);
    }

    #[test]
    fn hdd_random_reads_are_hopeless_for_imagenet() {
        let plan = StagingPlan::new(
            DatasetId::ImageNet,
            Bytes::from_gib(150),
            StorageDevice::Hdd,
            ReadPattern::RandomRecords,
            Seconds::from_minutes(13.0),
        );
        assert!(!plan.keeps_up());
        assert!(plan.slowdown() > 50.0, "slowdown {}", plan.slowdown());
    }

    #[test]
    fn sequential_sharding_rescues_the_hdd_sometimes() {
        let slow = StagingPlan::new(
            DatasetId::ImageNet,
            Bytes::from_gib(150),
            StorageDevice::Hdd,
            ReadPattern::RandomRecords,
            Seconds::from_hours(2.0),
        );
        let fast = StagingPlan::new(
            DatasetId::ImageNet,
            Bytes::from_gib(150),
            StorageDevice::Hdd,
            ReadPattern::SequentialShards,
            Seconds::from_hours(2.0),
        );
        assert!(fast.slowdown() < slow.slowdown());
    }

    #[test]
    fn device_rate_ordering() {
        for pattern in [ReadPattern::SequentialShards, ReadPattern::RandomRecords] {
            let rate = |d: StorageDevice| match pattern {
                ReadPattern::SequentialShards => d.sequential_read().as_bytes_per_sec(),
                ReadPattern::RandomRecords => d.random_read().as_bytes_per_sec(),
            };
            assert!(rate(StorageDevice::Hdd) < rate(StorageDevice::SataSsd));
            assert!(rate(StorageDevice::SataSsd) < rate(StorageDevice::NvmeSsd));
        }
    }

    #[test]
    fn writes_trail_reads_on_every_device() {
        for d in [
            StorageDevice::Hdd,
            StorageDevice::SataSsd,
            StorageDevice::NvmeSsd,
        ] {
            assert!(
                d.sequential_write().as_bytes_per_sec() < d.sequential_read().as_bytes_per_sec(),
                "{d}: write should trail read"
            );
            assert!(d.sequential_write().as_bytes_per_sec() > 0.0);
        }
    }

    #[test]
    fn display_reports_verdict() {
        let plan = StagingPlan::new(
            DatasetId::Coco,
            Bytes::from_gib(4),
            StorageDevice::SataSsd,
            ReadPattern::SequentialShards,
            Seconds::from_minutes(5.0),
        );
        assert!(plan.to_string().contains("Microsoft COCO"));
    }
}
