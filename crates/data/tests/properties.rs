//! Property-based tests for the dataset/pipeline substrate.

use mlperf_data::{DatasetId, InputPipeline, SyntheticDataset};
use mlperf_hw::units::Bytes;
use mlperf_hw::CpuModel;
use mlperf_testkit::prop::*;

fn arb_dataset() -> impl Gen<Value = DatasetId> {
    elements(&[
        DatasetId::ImageNet,
        DatasetId::Coco,
        DatasetId::Wmt17,
        DatasetId::MovieLens20M,
        DatasetId::Cifar10,
        DatasetId::Squad,
    ])
}

mlperf_testkit::properties! {
    /// Host batch time and H2D volume are exactly linear in batch size.
    #[test]
    fn pipeline_linear_in_batch(
        ds in arb_dataset(),
        sample_bytes in 1u64..1 << 22,
        batch in 1u64..4096
    ) {
        let p = InputPipeline::new(ds, Bytes::new(sample_bytes));
        let cpu = CpuModel::XeonGold6148.spec();
        let t1 = p.host_time_per_batch(&cpu, batch).as_secs();
        let t2 = p.host_time_per_batch(&cpu, 2 * batch).as_secs();
        prop_assert!((t2 - 2.0 * t1).abs() <= t1 * 1e-9 + 1e-15);
        prop_assert_eq!(
            p.h2d_bytes_per_batch(batch).as_u64(),
            batch * sample_bytes
        );
    }

    /// The cost multiplier scales host work proportionally and leaves the
    /// H2D volume untouched.
    #[test]
    fn multiplier_touches_only_host_work(
        ds in arb_dataset(),
        mult in 0.1f64..10.0,
        batch in 1u64..512
    ) {
        let base = InputPipeline::new(ds, Bytes::new(1024));
        let scaled = InputPipeline::new(ds, Bytes::new(1024)).with_host_cost_multiplier(mult);
        let ratio = scaled.host_core_secs_per_batch(batch) / base.host_core_secs_per_batch(batch);
        prop_assert!((ratio - mult).abs() < 1e-9);
        prop_assert_eq!(base.h2d_bytes_per_batch(batch), scaled.h2d_bytes_per_batch(batch));
    }

    /// Staging never exceeds the dataset and grows monotonically with
    /// prefetch depth until the cap.
    #[test]
    fn staging_bounded_and_monotone(
        ds in arb_dataset(),
        batch in 1u64..4096,
        depth in 1u64..16
    ) {
        let p = InputPipeline::new(ds, Bytes::new(4096));
        let a = p.staging_footprint(batch, depth);
        let b = p.staging_footprint(batch, depth + 1);
        prop_assert!(a <= b);
        prop_assert!(b <= ds.spec().on_disk());
    }

    /// Synthetic generation is deterministic per seed and payload sizes
    /// stay within the documented ±25 % envelope.
    #[test]
    fn synthetic_records_are_reproducible(ds in arb_dataset(), seed in 0u64..1000, idx in 0u64..100) {
        let mut a = SyntheticDataset::new(ds, seed);
        let mut b = SyntheticDataset::new(ds, seed);
        let ra = a.record(idx);
        let rb = b.record(idx);
        prop_assert_eq!(&ra, &rb);
        let mean = ds.spec().bytes_per_sample().as_u64().max(1);
        let len = ra.payload.len() as u64;
        prop_assert!(len >= mean - mean / 4 && len <= mean + mean / 4);
    }
}
