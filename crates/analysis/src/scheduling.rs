//! Multi-GPU job-scheduling search (Fig. 4).
//!
//! Given each benchmark's training time at every GPU width, §IV-D compares
//! the *naive* schedule (run every job one-by-one across all GPUs) against
//! the optimum found by searching the schedule space, reporting ~3 h saved
//! on 4 GPUs for the 7 MLPerf workloads. This module implements both: the
//! naive baseline, an LPT heuristic, and an exact branch-and-bound search
//! over (job order × width) choices on identical GPUs.

use std::collections::BTreeMap;
use std::fmt;

/// One benchmark's training time (minutes) at each GPU width it can run at.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTimes {
    name: String,
    times: BTreeMap<u64, f64>,
}

impl JobTimes {
    /// Construct from `(width, minutes)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if no widths are given, or any width is zero, or any time is
    /// not finite and positive.
    pub fn new(name: impl Into<String>, times: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let times: BTreeMap<u64, f64> = times.into_iter().collect();
        assert!(!times.is_empty(), "job needs at least one width");
        for (&w, &t) in &times {
            assert!(w > 0, "width must be positive");
            assert!(t.is_finite() && t > 0.0, "time must be finite and positive");
        }
        JobTimes {
            name: name.into(),
            times,
        }
    }

    /// The benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Training time at a width, if that width was measured.
    pub fn time_at(&self, width: u64) -> Option<f64> {
        self.times.get(&width).copied()
    }

    /// Widths available, ascending.
    pub fn widths(&self) -> impl Iterator<Item = u64> + '_ {
        self.times.keys().copied()
    }

    /// The smallest GPU-minutes area over available widths `<= max_width`
    /// (the best-case resource consumption, used for lower bounds).
    fn min_area(&self, max_width: u64) -> f64 {
        self.times
            .iter()
            .filter(|(&w, _)| w <= max_width)
            .map(|(&w, &t)| w as f64 * t)
            .fold(f64::INFINITY, f64::min)
    }
}

/// One scheduled execution: a job on a set of GPUs at a start time.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Index into the job list.
    pub job: usize,
    /// GPU indices the job occupies.
    pub gpus: Vec<usize>,
    /// Start time (minutes from schedule start).
    pub start: f64,
    /// Duration (minutes).
    pub duration: f64,
}

impl Placement {
    /// The completion time of this placement.
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }
}

/// A complete schedule of all jobs on `gpu_count` identical GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The placements, in start order.
    pub placements: Vec<Placement>,
    /// Number of GPUs in the pool.
    pub gpu_count: usize,
    /// The schedule's completion time (minutes).
    pub makespan: f64,
}

impl Schedule {
    /// Minutes saved versus another schedule of the same jobs.
    pub fn savings_vs(&self, other: &Schedule) -> f64 {
        other.makespan - self.makespan
    }

    /// Per-GPU timeline: for each GPU, `(job, start, end)` triples sorted by
    /// start (the Fig. 4 Gantt rows).
    pub fn gantt(&self) -> Vec<Vec<(usize, f64, f64)>> {
        let mut rows = vec![Vec::new(); self.gpu_count];
        for p in &self.placements {
            for &g in &p.gpus {
                rows[g].push((p.job, p.start, p.end()));
            }
        }
        for row in &mut rows {
            row.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("starts are finite"));
        }
        rows
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} placements on {} GPUs, makespan {:.1} min",
            self.placements.len(),
            self.gpu_count,
            self.makespan
        )
    }
}

/// The naive schedule: every job runs across the whole pool, one after
/// another (the paper's baseline — no fragmentation, no idling). A job
/// without a measurement at exactly `gpu_count` runs at its widest
/// feasible width, still holding the pool exclusively.
///
/// # Panics
///
/// Panics if `gpu_count` is zero, `jobs` is empty, or some job has no
/// feasible width at all.
pub fn naive_schedule(jobs: &[JobTimes], gpu_count: u64) -> Schedule {
    assert!(gpu_count > 0, "need at least one GPU");
    assert!(!jobs.is_empty(), "need at least one job");
    let mut t = 0.0;
    let mut placements = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let width = job
            .widths()
            .filter(|&w| w <= gpu_count)
            .max()
            .unwrap_or_else(|| panic!("{} cannot run within {gpu_count} GPUs", job.name()));
        let d = job.time_at(width).expect("width came from the map");
        placements.push(Placement {
            job: i,
            gpus: (0..width as usize).collect(),
            start: t,
            duration: d,
        });
        t += d;
    }
    Schedule {
        placements,
        gpu_count: gpu_count as usize,
        makespan: t,
    }
}

/// Longest-processing-time heuristic: jobs descending by single-GPU time,
/// each greedily assigned the width and start minimizing its completion.
///
/// # Panics
///
/// Panics if `gpu_count` is zero or `jobs` is empty.
pub fn lpt_schedule(jobs: &[JobTimes], gpu_count: u64) -> Schedule {
    assert!(gpu_count > 0, "need at least one GPU");
    assert!(!jobs.is_empty(), "need at least one job");
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        let ta = jobs[a].min_area(gpu_count);
        let tb = jobs[b].min_area(gpu_count);
        tb.partial_cmp(&ta).expect("times are finite")
    });
    let mut free = vec![0.0f64; gpu_count as usize];
    let mut placements = Vec::with_capacity(jobs.len());
    for &j in &order {
        let mut best: Option<(f64, u64, Vec<usize>, f64)> = None; // (end, w, gpus, start)
        for w in jobs[j].widths().filter(|&w| w <= gpu_count) {
            let d = jobs[j].time_at(w).expect("width iterated from map");
            let (gpus, start) = earliest_gpus(&free, w as usize);
            let end = start + d;
            if best.as_ref().is_none_or(|b| end < b.0) {
                best = Some((end, w, gpus, start));
            }
        }
        let (end, w, gpus, start) = best.expect("every job has at least one feasible width");
        for &g in &gpus {
            free[g] = end;
        }
        placements.push(Placement {
            job: j,
            gpus,
            start,
            duration: jobs[j].time_at(w).expect("width validated"),
        });
    }
    let makespan = free.iter().cloned().fold(0.0, f64::max);
    placements.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("starts are finite"));
    Schedule {
        placements,
        gpu_count: gpu_count as usize,
        makespan,
    }
}

/// The `w` earliest-free GPUs and the time they are all free.
fn earliest_gpus(free: &[f64], w: usize) -> (Vec<usize>, f64) {
    let mut idx: Vec<usize> = (0..free.len()).collect();
    idx.sort_by(|&a, &b| {
        free[a]
            .partial_cmp(&free[b])
            .expect("times are finite")
            .then(a.cmp(&b))
    });
    let chosen: Vec<usize> = idx.into_iter().take(w).collect();
    let start = chosen.iter().map(|&g| free[g]).fold(0.0f64, f64::max);
    (chosen, start)
}

/// Exact optimum by depth-first branch-and-bound over (next job, width)
/// decisions on identical GPUs.
///
/// # Examples
///
/// ```
/// use mlperf_analysis::scheduling::{naive_schedule, optimal_schedule, JobTimes};
///
/// let jobs = vec![
///     JobTimes::new("scales", [(1, 100.0), (2, 50.0), (4, 25.0)]),
///     JobTimes::new("stubborn", [(1, 100.0), (2, 90.0), (4, 85.0)]),
/// ];
/// let best = optimal_schedule(&jobs, 4);
/// assert!(best.makespan < naive_schedule(&jobs, 4).makespan);
/// ```
///
/// The search space is bounded by always packing a job onto the
/// earliest-free GPUs — optimal among identical GPUs for this placement
/// discipline — and pruned with an area lower bound.
///
/// # Panics
///
/// Panics if `gpu_count` is zero or `jobs` is empty or some job has no
/// feasible width `<= gpu_count`.
pub fn optimal_schedule(jobs: &[JobTimes], gpu_count: u64) -> Schedule {
    assert!(gpu_count > 0, "need at least one GPU");
    assert!(!jobs.is_empty(), "need at least one job");
    for j in jobs {
        assert!(
            j.widths().any(|w| w <= gpu_count),
            "{} cannot run within {gpu_count} GPUs",
            j.name()
        );
    }

    struct Search<'a> {
        jobs: &'a [JobTimes],
        /// Branching order: jobs descending by best-case GPU-minutes area,
        /// so the biggest commitments are decided (and pruned) first.
        order: &'a [usize],
        g: usize,
        best_makespan: f64,
        best: Vec<(usize, u64)>, // (job, width) in placement order
        current: Vec<(usize, u64)>,
        remaining_area: f64,
        /// States already expanded, keyed by (placed set, sorted free
        /// profile). Under the earliest-free-GPUs placement discipline two
        /// decision sequences reaching the same placed set with the same
        /// free-time multiset lead to identical futures, and the incumbent
        /// only tightens over time — so a revisit can never improve on the
        /// first visit and is pruned. This collapses the permutation
        /// symmetry of independent placements.
        seen: std::collections::HashSet<(u64, Vec<u64>)>,
    }

    impl Search<'_> {
        fn dfs(&mut self, free: &mut Vec<f64>, placed_mask: u64) {
            if self.current.len() == self.jobs.len() {
                let makespan = free.iter().cloned().fold(0.0, f64::max);
                if makespan < self.best_makespan {
                    self.best_makespan = makespan;
                    self.best = self.current.clone();
                }
                return;
            }
            // Lower bound: area argument + furthest committed completion.
            let committed: f64 = free.iter().sum();
            let lb_area = (committed + self.remaining_area) / self.g as f64;
            let lb_max = free.iter().cloned().fold(0.0, f64::max);
            if lb_area.max(lb_max) >= self.best_makespan {
                return;
            }
            let mut profile: Vec<u64> = free.iter().map(|f| f.to_bits()).collect();
            profile.sort_unstable();
            if !self.seen.insert((placed_mask, profile)) {
                return;
            }
            for &j in self.order {
                if placed_mask & (1 << j) != 0 {
                    continue;
                }
                let area_j = self.jobs[j].min_area(self.g as u64);
                let g64 = self.g as u64;
                // Widest first: wide placements finish the big jobs early,
                // so the first incumbents are strong and the area bound
                // prunes most of the permutation space.
                let mut widths: Vec<u64> = self.jobs[j].widths().filter(|&w| w <= g64).collect();
                widths.reverse();
                for w in widths {
                    let d = self.jobs[j].time_at(w).expect("width from map");
                    let (gpus, start) = earliest_gpus(free, w as usize);
                    let end = start + d;
                    let saved: Vec<f64> = gpus.iter().map(|&g| free[g]).collect();
                    for &g in &gpus {
                        free[g] = end;
                    }
                    self.current.push((j, w));
                    self.remaining_area -= area_j;
                    self.dfs(free, placed_mask | (1 << j));
                    self.remaining_area += area_j;
                    self.current.pop();
                    for (&g, &s) in gpus.iter().zip(&saved) {
                        free[g] = s;
                    }
                }
                // Symmetry break: when all GPUs are idle at the same time,
                // which unplaced job goes first is symmetric — fix it.
                if free.iter().all(|&f| f == free[0]) {
                    break;
                }
            }
        }
    }

    assert!(jobs.len() <= 64, "branch-and-bound supports up to 64 jobs");
    // Seed with LPT so pruning bites immediately.
    let seed = lpt_schedule(jobs, gpu_count);
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        let (aa, ab) = (jobs[a].min_area(gpu_count), jobs[b].min_area(gpu_count));
        ab.partial_cmp(&aa).expect("areas are finite").then(a.cmp(&b))
    });
    let mut search = Search {
        jobs,
        order: &order,
        g: gpu_count as usize,
        best_makespan: seed.makespan + 1e-9,
        best: Vec::new(),
        current: Vec::new(),
        remaining_area: jobs.iter().map(|j| j.min_area(gpu_count)).sum(),
        seen: std::collections::HashSet::new(),
    };
    let mut free = vec![0.0f64; gpu_count as usize];
    search.dfs(&mut free, 0);

    let decisions = if search.best.is_empty() {
        // Seed was already optimal: reconstruct its decisions.
        seed.placements
            .iter()
            .map(|p| (p.job, p.gpus.len() as u64))
            .collect()
    } else {
        search.best
    };

    // Replay the decisions to build placements.
    let mut free = vec![0.0f64; gpu_count as usize];
    let mut placements = Vec::with_capacity(jobs.len());
    for (j, w) in decisions {
        let d = jobs[j].time_at(w).expect("decision uses a recorded width");
        let (gpus, start) = earliest_gpus(&free, w as usize);
        let end = start + d;
        for &g in &gpus {
            free[g] = end;
        }
        placements.push(Placement {
            job: j,
            gpus,
            start,
            duration: d,
        });
    }
    let makespan = free.iter().cloned().fold(0.0, f64::max);
    placements.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("starts are finite"));
    Schedule {
        placements,
        gpu_count: gpu_count as usize,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_jobs() -> Vec<JobTimes> {
        vec![
            // Scales perfectly.
            JobTimes::new("scalable", [(1, 100.0), (2, 50.0), (4, 25.0)]),
            // Barely scales.
            JobTimes::new("stubborn", [(1, 100.0), (2, 90.0), (4, 85.0)]),
        ]
    }

    #[test]
    fn naive_serializes_at_full_width() {
        let s = naive_schedule(&two_jobs(), 4);
        assert_eq!(s.placements.len(), 2);
        assert!((s.makespan - (25.0 + 85.0)).abs() < 1e-9);
        assert!(s.placements.iter().all(|p| p.gpus.len() == 4));
    }

    #[test]
    fn optimal_beats_naive_on_mixed_scalability() {
        let jobs = two_jobs();
        let naive = naive_schedule(&jobs, 4);
        let opt = optimal_schedule(&jobs, 4);
        // Optimal: both at width 2, side by side — stubborn@2 (90) ||
        // scalable@2 (50) -> makespan 90 < naive's 110.
        assert!(
            opt.makespan < naive.makespan,
            "{} vs {}",
            opt.makespan,
            naive.makespan
        );
        assert!(
            (opt.makespan - 90.0).abs() < 1e-9,
            "makespan {}",
            opt.makespan
        );
        assert!((opt.savings_vs(&naive) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_never_worse_than_lpt() {
        let jobs = vec![
            JobTimes::new("a", [(1, 60.0), (2, 35.0), (4, 20.0)]),
            JobTimes::new("b", [(1, 50.0), (2, 30.0), (4, 25.0)]),
            JobTimes::new("c", [(1, 10.0), (2, 9.0), (4, 8.5)]),
            JobTimes::new("d", [(1, 200.0), (2, 105.0), (4, 55.0)]),
        ];
        for g in [2u64, 4] {
            let lpt = lpt_schedule(&jobs, g);
            let opt = optimal_schedule(&jobs, g);
            assert!(opt.makespan <= lpt.makespan + 1e-9, "g={g}");
        }
    }

    #[test]
    fn single_gpu_pool_serializes_everything() {
        let jobs = two_jobs();
        let opt = optimal_schedule(&jobs, 1);
        assert!((opt.makespan - 200.0).abs() < 1e-9);
    }

    #[test]
    fn schedule_gantt_covers_all_gpus_used() {
        let jobs = two_jobs();
        let opt = optimal_schedule(&jobs, 4);
        let gantt = opt.gantt();
        assert_eq!(gantt.len(), 4);
        let total: usize = gantt.iter().map(|r| r.len()).sum();
        let expected: usize = opt.placements.iter().map(|p| p.gpus.len()).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn placements_never_overlap_on_a_gpu() {
        let jobs = vec![
            JobTimes::new("a", [(1, 30.0), (2, 16.0), (4, 9.0)]),
            JobTimes::new("b", [(1, 25.0), (2, 14.0), (4, 8.0)]),
            JobTimes::new("c", [(1, 40.0), (2, 22.0), (4, 12.0)]),
        ];
        for sched in [lpt_schedule(&jobs, 4), optimal_schedule(&jobs, 4)] {
            for row in sched.gantt() {
                for w in row.windows(2) {
                    assert!(w[0].2 <= w[1].1 + 1e-9, "overlap: {w:?}");
                }
            }
        }
    }

    #[test]
    fn seven_job_search_completes() {
        // The paper's actual setting: 7 jobs, widths 1/2/4.
        let jobs: Vec<JobTimes> = (0..7)
            .map(|i| {
                let base = 60.0 + 37.0 * i as f64;
                JobTimes::new(
                    format!("job{i}"),
                    [
                        (1, base),
                        (2, base / (1.4 + 0.08 * i as f64)),
                        (4, base / (1.9 + 0.2 * i as f64)),
                    ],
                )
            })
            .collect();
        let naive = naive_schedule(&jobs, 4);
        let opt = optimal_schedule(&jobs, 4);
        assert!(opt.makespan <= naive.makespan);
    }

    #[test]
    #[should_panic(expected = "cannot run within")]
    fn infeasible_job_rejected() {
        let jobs = vec![JobTimes::new("wide-only", [(8, 10.0)])];
        let _ = optimal_schedule(&jobs, 4);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn nonpositive_time_rejected() {
        let _ = JobTimes::new("bad", [(1, 0.0)]);
    }
}
