//! Principal component analysis over workload characteristics.
//!
//! Section IV-A standardizes eight measured features per workload, extracts
//! principal components, plots the suite in PC1-PC2 and PC3-PC4 (Fig. 1),
//! reports the variance the top components cover (88 % for PC1–PC4), and
//! names each component's *dominant metric* — the feature with the largest
//! absolute loading. This module reproduces that pipeline exactly.

use crate::linalg::{symmetric_eigen, Matrix};
use crate::stats::{mean, std_dev};
use std::fmt;

/// A fitted PCA model.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
    /// Eigenvectors as columns, by descending eigenvalue.
    components: Matrix,
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fit PCA to observation rows (each row one workload, each column one
    /// feature). Features are z-score standardized first; constant features
    /// are left centered with unit divisor.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlperf_analysis::pca::Pca;
    ///
    /// let rows = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
    /// let pca = Pca::fit(&rows);
    /// // Perfectly correlated features: one component explains everything.
    /// assert!(pca.explained_variance_ratio()[0] > 0.999);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than two rows or the rows are ragged/empty.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(rows.len() >= 2, "PCA needs at least two observations");
        let d = rows[0].len();
        assert!(
            d > 0 && rows.iter().all(|r| r.len() == d),
            "ragged or empty rows"
        );

        let n = rows.len();
        let mut feature_means = Vec::with_capacity(d);
        let mut feature_stds = Vec::with_capacity(d);
        for j in 0..d {
            let col: Vec<f64> = rows.iter().map(|r| r[j]).collect();
            feature_means.push(mean(&col));
            let s = std_dev(&col);
            feature_stds.push(if s > 0.0 { s } else { 1.0 });
        }

        // Standardized data matrix.
        let z: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                (0..d)
                    .map(|j| (r[j] - feature_means[j]) / feature_stds[j])
                    .collect()
            })
            .collect();

        // Covariance of standardized data = correlation matrix.
        let mut cov = Matrix::zeros(d, d);
        for i in 0..d {
            for j in i..d {
                let c: f64 = z.iter().map(|r| r[i] * r[j]).sum::<f64>() / n as f64;
                cov[(i, j)] = c;
                cov[(j, i)] = c;
            }
        }

        let eig = symmetric_eigen(&cov);
        Pca {
            feature_means,
            feature_stds,
            components: eig.vectors,
            eigenvalues: eig.values.into_iter().map(|v| v.max(0.0)).collect(),
        }
    }

    /// Number of features the model was fitted on.
    pub fn n_features(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Eigenvalues (variance along each component), descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance explained by each component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.eigenvalues.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues.iter().map(|v| v / total).collect()
    }

    /// Cumulative variance covered by the first `k` components (the paper's
    /// "PC1 to PC4 covering 88 % variance" figure).
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the feature count.
    pub fn cumulative_variance(&self, k: usize) -> f64 {
        assert!(k <= self.n_features(), "k exceeds component count");
        self.explained_variance_ratio().iter().take(k).sum()
    }

    /// The loading vector of component `pc` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn loadings(&self, pc: usize) -> Vec<f64> {
        assert!(pc < self.n_features(), "component {pc} out of range");
        self.components.col(pc)
    }

    /// Index of the dominant metric of component `pc`: the feature with the
    /// greatest absolute weight in its eigenvector.
    pub fn dominant_feature(&self, pc: usize) -> usize {
        let loads = self.loadings(pc);
        loads
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.abs()
                    .partial_cmp(&b.1.abs())
                    .expect("loadings are finite")
            })
            .map(|(i, _)| i)
            .expect("at least one feature")
    }

    /// Project one observation onto the first `k` components.
    ///
    /// # Panics
    ///
    /// Panics if the row length mismatches or `k` exceeds the feature count.
    pub fn project(&self, row: &[f64], k: usize) -> Vec<f64> {
        assert_eq!(row.len(), self.n_features(), "feature-count mismatch");
        assert!(k <= self.n_features(), "k exceeds component count");
        let z: Vec<f64> = row
            .iter()
            .enumerate()
            .map(|(j, &x)| (x - self.feature_means[j]) / self.feature_stds[j])
            .collect();
        (0..k)
            .map(|pc| {
                self.components
                    .col(pc)
                    .iter()
                    .zip(&z)
                    .map(|(w, x)| w * x)
                    .sum()
            })
            .collect()
    }
}

impl fmt::Display for Pca {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ratios = self.explained_variance_ratio();
        write!(f, "PCA over {} features; variance:", self.n_features())?;
        for (i, r) in ratios.iter().enumerate().take(4) {
            write!(f, " PC{}={:.0}%", i + 1, r * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Observations that vary strongly along feature 0 and weakly along 1.
    fn anisotropic_rows() -> Vec<Vec<f64>> {
        vec![
            vec![10.0, 1.0, 0.5],
            vec![20.0, 1.1, 0.4],
            vec![30.0, 0.9, 0.6],
            vec![40.0, 1.0, 0.5],
            vec![50.0, 1.05, 0.45],
        ]
    }

    #[test]
    fn variance_ratios_sum_to_one() {
        let pca = Pca::fit(&anisotropic_rows());
        let sum: f64 = pca.explained_variance_ratio().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((pca.cumulative_variance(pca.n_features()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ratios_are_descending() {
        let pca = Pca::fit(&anisotropic_rows());
        let r = pca.explained_variance_ratio();
        assert!(r.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn projection_separates_two_clusters() {
        // Two well-separated clusters must land apart on PC1.
        let mut rows = Vec::new();
        for i in 0..5 {
            rows.push(vec![0.0 + i as f64 * 0.1, 5.0, 1.0]);
            rows.push(vec![100.0 + i as f64 * 0.1, 5.1, 1.1]);
        }
        let pca = Pca::fit(&rows);
        let a = pca.project(&rows[0], 1)[0];
        let b = pca.project(&rows[1], 1)[0];
        assert!((a - b).abs() > 1.0, "clusters should separate: {a} vs {b}");
    }

    #[test]
    fn dominant_feature_of_pc1_is_the_spread_axis() {
        // After standardization all features have unit variance, so make
        // two features move together (they form PC1) and one independent.
        let rows = vec![
            vec![1.0, 10.0, 0.3],
            vec![2.0, 20.0, 0.9],
            vec![3.0, 30.0, 0.1],
            vec![4.0, 40.0, 0.7],
        ];
        let pca = Pca::fit(&rows);
        let dom = pca.dominant_feature(0);
        assert!(
            dom == 0 || dom == 1,
            "correlated pair dominates PC1, got {dom}"
        );
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let rows = vec![vec![1.0, 7.0], vec![2.0, 7.0], vec![3.0, 7.0]];
        let pca = Pca::fit(&rows);
        let p = pca.project(&rows[0], 2);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn mean_row_projects_to_origin() {
        let rows = anisotropic_rows();
        let pca = Pca::fit(&rows);
        let d = rows[0].len();
        let mean_row: Vec<f64> = (0..d)
            .map(|j| rows.iter().map(|r| r[j]).sum::<f64>() / rows.len() as f64)
            .collect();
        let p = pca.project(&mean_row, d);
        assert!(p.iter().all(|x| x.abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_observation_rejected() {
        let _ = Pca::fit(&[vec![1.0, 2.0]]);
    }

    #[test]
    fn display_reports_percentages() {
        let pca = Pca::fit(&anisotropic_rows());
        assert!(pca.to_string().contains("PC1="));
    }
}
