//! The roofline model of Fig. 2.
//!
//! A roofline plots attainable FLOP/s against arithmetic intensity: below
//! the ridge point performance is capped by memory bandwidth (the slanted
//! roof), above it by the compute ceiling of the precision in use. The
//! paper measures empirical V100 ceilings with the Empirical Roofline
//! Toolkit and places every workload on the plot; [`RooflineModel::sweep`]
//! reproduces the ERT-style intensity sweep, and [`RooflinePoint`]s carry
//! the workload coordinates.

use mlperf_hw::gpu::{GpuSpec, Precision};
use mlperf_hw::units::{Bandwidth, FlopRate};
use std::fmt;

/// Whether a point sits under the slanted (memory) or flat (compute) roof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Boundedness {
    /// Left of the ridge: limited by memory bandwidth.
    MemoryBound,
    /// Right of the ridge: limited by the compute ceiling.
    ComputeBound,
}

impl fmt::Display for Boundedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Boundedness::MemoryBound => f.write_str("memory-bound"),
            Boundedness::ComputeBound => f.write_str("compute-bound"),
        }
    }
}

/// One workload's coordinates on the roofline plot.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Workload label.
    pub name: String,
    /// Suite label (determines the marker color in Fig. 2).
    pub suite: String,
    /// Arithmetic intensity, FLOP/byte.
    pub intensity: f64,
    /// Sustained throughput.
    pub throughput: FlopRate,
}

impl RooflinePoint {
    /// Construct a point, validating the intensity.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is not finite and positive.
    pub fn new(
        name: impl Into<String>,
        suite: impl Into<String>,
        intensity: f64,
        throughput: FlopRate,
    ) -> Self {
        assert!(
            intensity.is_finite() && intensity > 0.0,
            "arithmetic intensity must be finite and positive"
        );
        RooflinePoint {
            name: name.into(),
            suite: suite.into(),
            intensity,
            throughput,
        }
    }
}

/// An empirical roofline for one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineModel {
    gpu_name: String,
    memory_bandwidth: Bandwidth,
    ceilings: Vec<(Precision, FlopRate)>,
}

impl RooflineModel {
    /// Build the empirical roofline of a GPU (ERT-measured ceilings).
    pub fn for_gpu(gpu: &GpuSpec) -> Self {
        RooflineModel {
            gpu_name: gpu.name().to_string(),
            memory_bandwidth: gpu.empirical_hbm_bandwidth(),
            ceilings: Precision::ALL
                .iter()
                .map(|&p| (p, gpu.empirical_flop_rate(p)))
                .collect(),
        }
    }

    /// The measured memory-bandwidth roof.
    pub fn memory_bandwidth(&self) -> Bandwidth {
        self.memory_bandwidth
    }

    /// The compute ceiling for a precision.
    pub fn ceiling(&self, precision: Precision) -> FlopRate {
        self.ceilings
            .iter()
            .find(|(p, _)| *p == precision)
            .map(|(_, r)| *r)
            .expect("all precisions present by construction")
    }

    /// Attainable FLOP/s at an arithmetic intensity under a precision roof:
    /// `min(ceiling, intensity × bandwidth)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlperf_analysis::roofline::RooflineModel;
    /// use mlperf_hw::{GpuModel, Precision};
    ///
    /// let r = RooflineModel::for_gpu(&GpuModel::TeslaV100Sxm2_16.spec());
    /// // Left of the ridge, attainable performance scales with intensity.
    /// let low = r.attainable(1.0, Precision::Single);
    /// let high = r.attainable(2.0, Precision::Single);
    /// assert!((high.as_flops_per_sec() / low.as_flops_per_sec() - 2.0).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is not finite and positive.
    pub fn attainable(&self, intensity: f64, precision: Precision) -> FlopRate {
        assert!(
            intensity.is_finite() && intensity > 0.0,
            "arithmetic intensity must be finite and positive"
        );
        let mem_limited = FlopRate::new(intensity * self.memory_bandwidth.as_bytes_per_sec());
        mem_limited.min(self.ceiling(precision))
    }

    /// The ridge-point intensity for a precision: where the slanted and
    /// flat roofs meet.
    pub fn ridge(&self, precision: Precision) -> f64 {
        self.ceiling(precision).as_flops_per_sec() / self.memory_bandwidth.as_bytes_per_sec()
    }

    /// Classify a point against a precision roof.
    pub fn classify(&self, point: &RooflinePoint, precision: Precision) -> Boundedness {
        if point.intensity < self.ridge(precision) {
            Boundedness::MemoryBound
        } else {
            Boundedness::ComputeBound
        }
    }

    /// Fraction of the attainable roof a point achieves (1.0 = on the roof).
    pub fn roof_fraction(&self, point: &RooflinePoint, precision: Precision) -> f64 {
        point.throughput.as_flops_per_sec()
            / self
                .attainable(point.intensity, precision)
                .as_flops_per_sec()
    }

    /// ERT-style sweep: sample the attainable curve at logarithmically
    /// spaced intensities spanning `lo..=hi` FLOP/byte with `n` points.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid or `n < 2`.
    pub fn sweep(&self, precision: Precision, lo: f64, hi: f64, n: usize) -> Vec<(f64, FlopRate)> {
        assert!(lo > 0.0 && hi > lo, "invalid sweep range");
        assert!(n >= 2, "sweep needs at least two points");
        let ratio = (hi / lo).ln();
        (0..n)
            .map(|i| {
                let ai = lo * (ratio * i as f64 / (n - 1) as f64).exp();
                (ai, self.attainable(ai, precision))
            })
            .collect()
    }
}

impl fmt::Display for RooflineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} roofline: {} memory roof, FP32 ceiling {}, ridge {:.1} FLOP/B",
            self.gpu_name,
            self.memory_bandwidth,
            self.ceiling(Precision::Single),
            self.ridge(Precision::Single),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_hw::gpu::GpuModel;

    fn v100() -> RooflineModel {
        RooflineModel::for_gpu(&GpuModel::TeslaV100Sxm2_16.spec())
    }

    #[test]
    fn attainable_is_min_of_roofs() {
        let r = v100();
        // Far left: memory slope.
        let low = r.attainable(0.1, Precision::Single);
        assert!(
            (low.as_flops_per_sec() - 0.1 * r.memory_bandwidth().as_bytes_per_sec()).abs() < 1.0
        );
        // Far right: flat ceiling.
        let high = r.attainable(1e4, Precision::Single);
        assert_eq!(high, r.ceiling(Precision::Single));
    }

    #[test]
    fn ridge_ordering_matches_precision_speed() {
        let r = v100();
        assert!(r.ridge(Precision::Double) < r.ridge(Precision::Single));
        assert!(r.ridge(Precision::Single) < r.ridge(Precision::TensorCore));
    }

    #[test]
    fn classification_flips_at_ridge() {
        let r = v100();
        let ridge = r.ridge(Precision::Single);
        let below = RooflinePoint::new("a", "s", ridge * 0.5, FlopRate::from_tflops(1.0));
        let above = RooflinePoint::new("b", "s", ridge * 2.0, FlopRate::from_tflops(1.0));
        assert_eq!(
            r.classify(&below, Precision::Single),
            Boundedness::MemoryBound
        );
        assert_eq!(
            r.classify(&above, Precision::Single),
            Boundedness::ComputeBound
        );
    }

    #[test]
    fn roof_fraction_is_one_on_the_roof() {
        let r = v100();
        let ai = 2.0;
        let p = RooflinePoint::new("on-roof", "s", ai, r.attainable(ai, Precision::Single));
        assert!((r.roof_fraction(&p, Precision::Single) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_is_monotonic_and_spans_range() {
        let r = v100();
        let pts = r.sweep(Precision::Single, 0.01, 1000.0, 64);
        assert_eq!(pts.len(), 64);
        assert!((pts[0].0 - 0.01).abs() < 1e-12);
        assert!((pts[63].0 - 1000.0).abs() < 1e-6);
        assert!(pts
            .windows(2)
            .all(|w| w[1].1.as_flops_per_sec() >= w[0].1.as_flops_per_sec()));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_intensity_rejected() {
        let _ = RooflinePoint::new("x", "s", 0.0, FlopRate::ZERO);
    }

    #[test]
    fn display_names_the_gpu() {
        assert!(v100().to_string().contains("V100"));
    }
}
