//! Scalability metrics (Table IV).
//!
//! The paper reports, per benchmark, the training time on single P100 and
//! V100 GPUs, the P-to-V generational speedup, and 1→2/4/8-GPU scaling
//! factors on the DSS 8440. [`ScalingRow`] holds one benchmark's numbers
//! and derives the speedups and parallel efficiencies.

use std::collections::BTreeMap;
use std::fmt;

/// One benchmark's row of Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    name: String,
    p100_minutes: f64,
    /// Training time (minutes) at each V100 GPU count.
    v100_minutes: BTreeMap<u64, f64>,
}

impl ScalingRow {
    /// Build a row from the P100 anchor and `(gpus, minutes)` measurements.
    ///
    /// # Panics
    ///
    /// Panics unless the 1-GPU V100 time is present and every time is
    /// finite and positive.
    pub fn new(
        name: impl Into<String>,
        p100_minutes: f64,
        v100_minutes: impl IntoIterator<Item = (u64, f64)>,
    ) -> Self {
        assert!(
            p100_minutes.is_finite() && p100_minutes > 0.0,
            "P100 time must be positive"
        );
        let v100_minutes: BTreeMap<u64, f64> = v100_minutes.into_iter().collect();
        assert!(v100_minutes.contains_key(&1), "need the single-V100 anchor");
        for (&n, &t) in &v100_minutes {
            assert!(n > 0, "GPU count must be positive");
            assert!(t.is_finite() && t > 0.0, "time must be finite and positive");
        }
        ScalingRow {
            name: name.into(),
            p100_minutes,
            v100_minutes,
        }
    }

    /// The benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Training time on the P100 reference machine.
    pub fn p100_minutes(&self) -> f64 {
        self.p100_minutes
    }

    /// Training time at a V100 GPU count, if measured.
    pub fn v100_minutes(&self, gpus: u64) -> Option<f64> {
        self.v100_minutes.get(&gpus).copied()
    }

    /// The P100 → V100 single-GPU generational speedup.
    pub fn p_to_v_speedup(&self) -> f64 {
        self.p100_minutes / self.v100_minutes[&1]
    }

    /// Speedup of `gpus` V100s over one V100 (the 1-to-N columns).
    pub fn speedup(&self, gpus: u64) -> Option<f64> {
        Some(self.v100_minutes[&1] / self.v100_minutes(gpus)?)
    }

    /// Parallel efficiency at a GPU count: speedup / ideal.
    pub fn efficiency(&self, gpus: u64) -> Option<f64> {
        Some(self.speedup(gpus)? / gpus as f64)
    }

    /// GPU counts measured, ascending.
    pub fn gpu_counts(&self) -> impl Iterator<Item = u64> + '_ {
        self.v100_minutes.keys().copied()
    }
}

impl fmt::Display for ScalingRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: P100 {:.1} min, V100 {:.1} min, P-to-V {:.2}x",
            self.name,
            self.p100_minutes,
            self.v100_minutes[&1],
            self.p_to_v_speedup()
        )?;
        for n in self.gpu_counts().filter(|&n| n > 1) {
            if let Some(s) = self.speedup(n) {
                write!(f, ", 1-to-{n} {s:.2}x")?;
            }
        }
        Ok(())
    }
}

/// Classify a row's scaling quality the way §IV-D narrates it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingClass {
    /// Near-linear to 8 GPUs (Res50, SSD).
    Good,
    /// Noticeably sub-linear but still improving (MRCNN, XFMR).
    Medium,
    /// Saturates early; more GPUs are not rewarding (NCF).
    Poor,
}

impl fmt::Display for ScalingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalingClass::Good => "good",
            ScalingClass::Medium => "medium",
            ScalingClass::Poor => "poor",
        };
        f.write_str(s)
    }
}

/// Fit Amdahl's law to a row's speedup curve: find the serial fraction
/// `s` minimizing squared error of `speedup(n) = 1 / (s + (1 - s) / n)`
/// over the measured GPU counts. Returns `s` in `[0, 1]` — the scalar
/// summary of *why* a benchmark scales the way it does (0 = perfectly
/// parallel, 1 = fully serial).
///
/// # Panics
///
/// Panics if the row has no multi-GPU measurements.
pub fn amdahl_serial_fraction(row: &ScalingRow) -> f64 {
    let points: Vec<(f64, f64)> = row
        .gpu_counts()
        .filter(|&n| n > 1)
        .map(|n| (n as f64, row.speedup(n).expect("count came from the row")))
        .collect();
    assert!(
        !points.is_empty(),
        "need at least one multi-GPU measurement"
    );
    // 1-D convex-ish objective: golden-section search over s in [0, 1].
    let sse = |s: f64| -> f64 {
        points
            .iter()
            .map(|&(n, measured)| {
                let predicted = 1.0 / (s + (1.0 - s) / n);
                (predicted - measured).powi(2)
            })
            .sum()
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    const PHI: f64 = 0.618_033_988_749_894_8;
    for _ in 0..80 {
        let a = hi - PHI * (hi - lo);
        let b = lo + PHI * (hi - lo);
        if sse(a) < sse(b) {
            hi = b;
        } else {
            lo = a;
        }
    }
    (lo + hi) / 2.0
}

/// Classify by 8-GPU efficiency (falls back to the largest measured count).
pub fn classify(row: &ScalingRow) -> ScalingClass {
    let n = row.gpu_counts().max().expect("at least the 1-GPU anchor");
    if n == 1 {
        return ScalingClass::Poor;
    }
    let eff = row.efficiency(n).expect("max count exists");
    if eff >= 0.72 {
        ScalingClass::Good
    } else if eff >= 0.40 {
        ScalingClass::Medium
    } else {
        ScalingClass::Poor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Res50_TF row.
    fn res50() -> ScalingRow {
        ScalingRow::new(
            "Res50_TF",
            8831.3,
            [
                (1, 1016.9),
                (2, 1016.9 / 1.92),
                (4, 1016.9 / 3.84),
                (8, 1016.9 / 7.04),
            ],
        )
    }

    /// The paper's NCF_Py row.
    fn ncf() -> ScalingRow {
        ScalingRow::new(
            "NCF_Py",
            46.7,
            [(1, 2.2), (2, 2.2 / 1.88), (4, 2.2 / 2.16), (8, 2.2 / 2.32)],
        )
    }

    #[test]
    fn p_to_v_matches_table_iv() {
        assert!((res50().p_to_v_speedup() - 8.68).abs() < 0.01);
        assert!((ncf().p_to_v_speedup() - 21.23).abs() < 0.01);
    }

    #[test]
    fn speedups_round_trip() {
        let r = res50();
        assert!((r.speedup(8).unwrap() - 7.04).abs() < 1e-9);
        assert!((r.efficiency(8).unwrap() - 0.88).abs() < 0.001);
        assert_eq!(r.speedup(16), None);
    }

    #[test]
    fn classification_matches_paper_narrative() {
        assert_eq!(classify(&res50()), ScalingClass::Good);
        assert_eq!(classify(&ncf()), ScalingClass::Poor);
        let mrcnn = ScalingRow::new(
            "MRCNN_Py",
            4999.5,
            [
                (1, 1840.4),
                (2, 1840.4 / 1.76),
                (4, 1840.4 / 2.64),
                (8, 1840.4 / 5.60),
            ],
        );
        assert_eq!(classify(&mrcnn), ScalingClass::Medium);
    }

    #[test]
    fn amdahl_fit_recovers_known_serial_fractions() {
        // Generate speedups from a known s and recover it.
        for s_true in [0.0, 0.05, 0.2, 0.5] {
            let speedup = |n: f64| 1.0 / (s_true + (1.0 - s_true) / n);
            let row = ScalingRow::new(
                "synthetic",
                100.0,
                [
                    (1, 10.0),
                    (2, 10.0 / speedup(2.0)),
                    (4, 10.0 / speedup(4.0)),
                    (8, 10.0 / speedup(8.0)),
                ],
            );
            let s_fit = amdahl_serial_fraction(&row);
            assert!(
                (s_fit - s_true).abs() < 1e-6,
                "s_true {s_true}, fit {s_fit}"
            );
        }
    }

    #[test]
    fn amdahl_orders_the_paper_rows() {
        // Res50_TF scales nearly linearly (tiny serial fraction); NCF
        // saturates (large one).
        let s_res50 = amdahl_serial_fraction(&res50());
        let s_ncf = amdahl_serial_fraction(&ncf());
        assert!(s_res50 < 0.05, "Res50 serial fraction {s_res50}");
        assert!(s_ncf > 0.25, "NCF serial fraction {s_ncf}");
    }

    #[test]
    fn single_count_rows_classify_poor() {
        let r = ScalingRow::new("solo", 10.0, [(1, 5.0)]);
        assert_eq!(classify(&r), ScalingClass::Poor);
    }

    #[test]
    #[should_panic(expected = "single-V100 anchor")]
    fn missing_anchor_rejected() {
        let _ = ScalingRow::new("x", 10.0, [(2, 5.0)]);
    }

    #[test]
    fn display_contains_speedups() {
        let s = res50().to_string();
        assert!(s.contains("P-to-V 8.68x"));
        assert!(s.contains("1-to-8 7.04x"));
    }
}
