//! Small statistics helpers shared by the analyses.
//!
//! Two families live here. The moment-based helpers ([`mean`],
//! [`variance`], [`pearson`], ...) predate the replication subsystem and
//! keep their panic-on-empty contract — their callers construct the
//! samples themselves. The order-statistic kernels ([`quantile`],
//! [`median`], [`bootstrap_ci_median`]) feed run-to-run distributions
//! whose values come from simulation output, so they return a typed
//! [`StatsError`] instead: an empty or non-finite sample must surface as
//! an error the executor can classify (`NonFiniteOutput`), never as a
//! silently-garbage quantile. The bootstrap draws its resamples from the
//! workspace's seeded PRNG and reuses caller-owned scratch buffers, so
//! the resampling loop allocates nothing.

use mlperf_testkit::rng::Rng;
use std::fmt;

/// Why an order-statistic kernel refused a sample.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The sample was empty.
    Empty,
    /// The sample contained a NaN or infinity at `index`.
    NonFinite {
        /// Position of the first offending value.
        index: usize,
        /// The offending value (NaN or ±inf).
        value: f64,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::Empty => write!(f, "statistic of an empty sample is undefined"),
            StatsError::NonFinite { index, value } => {
                write!(f, "non-finite sample value {value} at index {index}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Reject empty and non-finite samples with a typed error.
fn check_sample(xs: &[f64]) -> Result<(), StatsError> {
    if xs.is_empty() {
        return Err(StatsError::Empty);
    }
    if let Some((index, &value)) = xs.iter().enumerate().find(|(_, x)| !x.is_finite()) {
        return Err(StatsError::NonFinite { index, value });
    }
    Ok(())
}

/// Linear-interpolation quantile (the R-7 / NumPy default) of the values
/// already sorted in `sorted`. `q` in `[0, 1]`.
fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

/// Linear-interpolation quantile (R-7), sorting into the caller's
/// `scratch` buffer — after the first call on a scratch of sufficient
/// capacity, no allocation happens.
///
/// # Errors
///
/// [`StatsError::Empty`] on an empty sample; [`StatsError::NonFinite`]
/// naming the first NaN/infinite value.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` (a programming error in the caller,
/// not a data problem).
pub fn quantile_in(xs: &[f64], q: f64, scratch: &mut Vec<f64>) -> Result<f64, StatsError> {
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0, 1]");
    check_sample(xs)?;
    scratch.clear();
    scratch.extend_from_slice(xs);
    scratch.sort_unstable_by(f64::total_cmp);
    Ok(quantile_of_sorted(scratch, q))
}

/// Convenience wrapper over [`quantile_in`] with a fresh scratch buffer.
///
/// # Errors
///
/// See [`quantile_in`].
pub fn quantile(xs: &[f64], q: f64) -> Result<f64, StatsError> {
    quantile_in(xs, q, &mut Vec::with_capacity(xs.len()))
}

/// Sample median (the 0.5 quantile).
///
/// # Errors
///
/// See [`quantile_in`].
pub fn median(xs: &[f64]) -> Result<f64, StatsError> {
    quantile(xs, 0.5)
}

/// Reusable buffers for [`bootstrap_ci_median`]: one sorted copy of the
/// base sample, one resample buffer, one buffer of resample medians.
/// Reusing a scratch across calls keeps the resampling loop free of
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct BootstrapScratch {
    sorted: Vec<f64>,
    resample: Vec<f64>,
    medians: Vec<f64>,
}

impl BootstrapScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        BootstrapScratch::default()
    }
}

/// Percentile-bootstrap confidence interval for the median: `resamples`
/// same-size resamples drawn with replacement from `xs` using the seeded
/// in-tree PRNG (deterministic for a given `(xs, resamples, level,
/// seed)`), returning the `(lo, hi)` percentile interval of the resample
/// medians at confidence `level` (e.g. `0.95`). The hot loop reuses
/// `scratch` and allocates nothing once the buffers have grown.
///
/// # Errors
///
/// [`StatsError::Empty`] / [`StatsError::NonFinite`] on a bad sample.
///
/// # Panics
///
/// Panics if `resamples == 0` or `level` is outside `(0, 1)` (programming
/// errors in the caller).
pub fn bootstrap_ci_median(
    xs: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
    scratch: &mut BootstrapScratch,
) -> Result<(f64, f64), StatsError> {
    assert!(resamples > 0, "bootstrap needs at least one resample");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level {level} outside (0, 1)"
    );
    check_sample(xs)?;
    let n = xs.len();
    scratch.sorted.clear();
    scratch.sorted.extend_from_slice(xs);
    scratch.sorted.sort_unstable_by(f64::total_cmp);
    let mut rng = Rng::new(seed);
    scratch.medians.clear();
    scratch.medians.reserve(resamples);
    for _ in 0..resamples {
        scratch.resample.clear();
        for _ in 0..n {
            scratch.resample.push(scratch.sorted[rng.gen_range(0..n)]);
        }
        scratch.resample.sort_unstable_by(f64::total_cmp);
        scratch.medians.push(quantile_of_sorted(&scratch.resample, 0.5));
    }
    scratch.medians.sort_unstable_by(f64::total_cmp);
    let tail = (1.0 - level) / 2.0;
    Ok((
        quantile_of_sorted(&scratch.medians, tail),
        quantile_of_sorted(&scratch.medians, 1.0 - tail),
    ))
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of an empty slice is undefined");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`, matching standardization for PCA).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0.0 when either sample is constant (no linear relationship can
/// be measured).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs equal-length samples");
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics on an empty slice or any nonpositive value.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(
        !xs.is_empty(),
        "geometric mean of an empty slice is undefined"
    );
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric mean needs positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_sample_has_zero_correlation() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn geometric_mean_of_speedups() {
        let speedups = [2.0, 8.0];
        assert!((geometric_mean(&speedups) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_mean_panics() {
        let _ = mean(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn quantile_interpolates_r7() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Ok(1.0));
        assert_eq!(quantile(&xs, 1.0), Ok(4.0));
        assert_eq!(median(&xs), Ok(2.5));
        assert_eq!(quantile(&xs, 0.25), Ok(1.75));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Ok(3.0));
    }

    #[test]
    fn quantile_rejects_bad_samples_with_typed_errors() {
        assert_eq!(median(&[]), Err(StatsError::Empty));
        let got = median(&[1.0, f64::NAN, 2.0]).unwrap_err();
        let StatsError::NonFinite { index, value } = got else {
            panic!("expected NonFinite, got {got:?}");
        };
        assert_eq!(index, 1);
        assert!(value.is_nan());
        assert_eq!(
            quantile(&[f64::INFINITY], 0.5),
            Err(StatsError::NonFinite {
                index: 0,
                value: f64::INFINITY
            })
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_bad_level() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn quantile_in_ignores_stale_scratch_contents() {
        let mut scratch = vec![f64::NAN; 32];
        assert_eq!(quantile_in(&[2.0, 1.0], 0.5, &mut scratch), Ok(1.5));
    }

    #[test]
    fn bootstrap_is_seed_deterministic_and_contains_the_median() {
        let xs = [12.0, 9.5, 11.0, 10.2, 9.9, 10.8, 10.1, 11.4];
        let mut scratch = BootstrapScratch::new();
        let a = bootstrap_ci_median(&xs, 200, 0.95, 7, &mut scratch).unwrap();
        let b = bootstrap_ci_median(&xs, 200, 0.95, 7, &mut scratch).unwrap();
        assert_eq!(a, b, "same seed, same interval");
        let c = bootstrap_ci_median(&xs, 200, 0.95, 8, &mut scratch).unwrap();
        assert_ne!(a, c, "a different seed resamples differently");
        let m = median(&xs).unwrap();
        assert!(a.0 <= m && m <= a.1, "CI {a:?} must contain the median {m}");
        assert!(a.0 >= 9.5 && a.1 <= 12.0, "CI within the sample range");
    }

    #[test]
    fn bootstrap_of_a_constant_sample_is_degenerate() {
        let xs = [4.0; 6];
        let mut scratch = BootstrapScratch::new();
        assert_eq!(
            bootstrap_ci_median(&xs, 50, 0.95, 1, &mut scratch),
            Ok((4.0, 4.0))
        );
    }

    #[test]
    fn bootstrap_rejects_non_finite_samples() {
        let mut scratch = BootstrapScratch::new();
        assert_eq!(
            bootstrap_ci_median(&[1.0, f64::NEG_INFINITY], 10, 0.9, 0, &mut scratch),
            Err(StatsError::NonFinite {
                index: 1,
                value: f64::NEG_INFINITY
            })
        );
        assert_eq!(
            bootstrap_ci_median(&[], 10, 0.9, 0, &mut scratch),
            Err(StatsError::Empty)
        );
    }
}
