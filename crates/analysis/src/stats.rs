//! Small statistics helpers shared by the analyses.

/// Arithmetic mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of an empty slice is undefined");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`, matching standardization for PCA).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0.0 when either sample is constant (no linear relationship can
/// be measured).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs equal-length samples");
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics on an empty slice or any nonpositive value.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(
        !xs.is_empty(),
        "geometric mean of an empty slice is undefined"
    );
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geometric mean needs positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn perfect_correlation() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_sample_has_zero_correlation() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn geometric_mean_of_speedups() {
        let speedups = [2.0, 8.0];
        assert!((geometric_mean(&speedups) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_mean_panics() {
        let _ = mean(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }
}
