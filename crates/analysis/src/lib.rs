//! Analysis stack for the MLPerf-demystified reproduction.
//!
//! The paper's four analyses, each with the machinery it needs:
//!
//! * [`pca`] (over [`linalg`]'s Jacobi eigensolver) — the Fig. 1 workload
//!   similarity study;
//! * [`roofline`] — the Fig. 2 V100 roofline and workload placement;
//! * [`scheduling`] — the Fig. 4 naive-vs-optimal makespan search;
//! * [`scaling`] — the Table IV speedup/efficiency metrics;
//! * [`clustering`] — agglomerative clustering over the workload space
//!   (making §IV-A's eyeballed groupings algorithmic);
//! * [`stats`] — shared statistics helpers.
//!
//! # Examples
//!
//! ```
//! use mlperf_analysis::scheduling::{naive_schedule, optimal_schedule, JobTimes};
//!
//! let jobs = vec![
//!     JobTimes::new("scales", [(1, 100.0), (2, 50.0), (4, 25.0)]),
//!     JobTimes::new("doesn't", [(1, 100.0), (2, 90.0), (4, 85.0)]),
//! ];
//! let naive = naive_schedule(&jobs, 4);
//! let best = optimal_schedule(&jobs, 4);
//! assert!(best.makespan <= naive.makespan);
//! ```

pub mod clustering;
pub mod linalg;
pub mod pca;
pub mod roofline;
pub mod scaling;
pub mod scheduling;
pub mod stats;

pub use clustering::{cluster, Dendrogram, Linkage};
pub use linalg::{symmetric_eigen, Matrix, SymmetricEigen};
pub use pca::Pca;
pub use roofline::{Boundedness, RooflineModel, RooflinePoint};
pub use scaling::{classify, ScalingClass, ScalingRow};
pub use scheduling::{
    lpt_schedule, naive_schedule, optimal_schedule, JobTimes, Placement, Schedule,
};
