//! Minimal dense linear algebra: row-major matrices and a cyclic Jacobi
//! eigensolver for symmetric matrices.
//!
//! PCA needs exactly one non-trivial primitive — the eigendecomposition of
//! a covariance matrix — and covariance matrices are symmetric, so the
//! classical Jacobi rotation method (unconditionally convergent, simple,
//! accurate) is the right tool at these sizes (8×8 for the paper's feature
//! space).

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A copy of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> Vec<f64> {
        assert!(r < self.rows, "row {r} out of range");
        self.data[r * self.cols..(r + 1) * self.cols].to_vec()
    }

    /// A copy of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column {c} out of range");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The eigendecomposition of a symmetric matrix: `values[i]` belongs to the
/// unit eigenvector in column `i` of `vectors`, sorted descending by value.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns, matching `values` order.
    pub vectors: Matrix,
}

/// Eigendecompose a symmetric matrix with cyclic Jacobi rotations.
///
/// # Panics
///
/// Panics if the matrix is not square/symmetric, or fails to converge
/// (which for symmetric input cannot happen within the generous sweep cap).
pub fn symmetric_eigen(m: &Matrix) -> SymmetricEigen {
    assert!(m.is_symmetric(1e-9), "Jacobi requires a symmetric matrix");
    let n = m.rows();
    let mut a = m.clone();
    let mut v = Matrix::identity(n);

    const MAX_SWEEPS: usize = 100;
    const TOL: f64 = 1e-12;
    for _sweep in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[(i, j)] * a[(i, j)];
            }
        }
        if off.sqrt() < TOL {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < TOL / (n * n) as f64 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to A (both sides) and accumulate in V.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort by eigenvalue, descending; reorder eigenvector columns to match.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        a[(j, j)]
            .partial_cmp(&a[(i, i)])
            .expect("eigenvalues of a real symmetric matrix are finite")
    });
    let values: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_index() {
        let m = Matrix::identity(3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.rows(), 3);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_by_hand() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn eigen_of_diagonal_is_diagonal() {
        let m = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let e = symmetric_eigen(&m);
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn eigen_of_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigen(&m);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_reconstruct_matrix() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ]);
        let e = symmetric_eigen(&m);
        // Reconstruct V * diag(values) * V^T.
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = e.values[i];
        }
        let recon = e.vectors.matmul(&d).matmul(&e.vectors.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - m[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvalue_sum_equals_trace() {
        let m = Matrix::from_rows(&[
            vec![2.0, 0.3, 0.1, 0.0],
            vec![0.3, 1.5, 0.2, 0.4],
            vec![0.1, 0.2, 3.0, 0.6],
            vec![0.0, 0.4, 0.6, 0.8],
        ]);
        let e = symmetric_eigen(&m);
        let trace = 2.0 + 1.5 + 3.0 + 0.8;
        let sum: f64 = e.values.iter().sum();
        assert!((sum - trace).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let _ = symmetric_eigen(&m);
    }

    #[test]
    fn display_prints_grid() {
        let m = Matrix::identity(2);
        let s = m.to_string();
        assert_eq!(s.lines().count(), 2);
    }
}
