//! Agglomerative hierarchical clustering over the workload space.
//!
//! §IV-A's similarity analysis eyeballs clusters in the PCA planes; this
//! module makes the grouping algorithmic: bottom-up agglomeration with
//! selectable linkage over the (projected) feature vectors, yielding both a
//! merge dendrogram and flat cluster assignments at any cut.

use std::fmt;

/// How inter-cluster distance is computed from member distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Minimum member distance (chains clusters).
    Single,
    /// Maximum member distance (compact clusters).
    #[default]
    Complete,
    /// Mean member distance (UPGMA).
    Average,
}

impl fmt::Display for Linkage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
        };
        f.write_str(s)
    }
}

/// One merge step of the dendrogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster (node id: leaves are `0..n`, internal nodes
    /// continue upward in merge order).
    pub a: usize,
    /// Second merged cluster.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// The id of the new cluster (`n + merge index`).
    pub id: usize,
}

/// A fitted hierarchical clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of observations clustered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dendrogram is over zero observations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge sequence, in non-decreasing distance order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Flat assignments when cutting into `k` clusters: returns, for every
    /// observation, a label in `0..k` (labels ordered by first member).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= n`.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n, "cut size must be in 1..=n");
        // Apply merges until only k clusters remain.
        let mut parent: Vec<usize> = (0..self.n + self.merges.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for m in self.merges.iter().take(self.n - k) {
            let (ra, rb) = (find(&mut parent, m.a), find(&mut parent, m.b));
            parent[ra] = m.id;
            parent[rb] = m.id;
        }
        // Relabel roots densely in order of first appearance.
        let mut labels = Vec::with_capacity(self.n);
        let mut seen: Vec<usize> = Vec::new();
        for i in 0..self.n {
            let root = find(&mut parent, i);
            let label = match seen.iter().position(|&r| r == root) {
                Some(p) => p,
                None => {
                    seen.push(root);
                    seen.len() - 1
                }
            };
            labels.push(label);
        }
        labels
    }
}

/// Fit a hierarchical clustering over observation rows with the given
/// linkage, using Euclidean distance.
///
/// # Panics
///
/// Panics if `rows` is empty or ragged.
pub fn cluster(rows: &[Vec<f64>], linkage: Linkage) -> Dendrogram {
    let n = rows.len();
    assert!(n >= 1, "need at least one observation");
    let d = rows[0].len();
    assert!(rows.iter().all(|r| r.len() == d), "ragged rows");

    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };

    // Active clusters: (node id, member indices).
    let mut active: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_id = n;

    while active.len() > 1 {
        // Find the closest active pair under the linkage.
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..active.len() {
            for j in (i + 1)..active.len() {
                let mut ds: Vec<f64> = Vec::new();
                for &x in &active[i].1 {
                    for &y in &active[j].1 {
                        ds.push(dist(&rows[x], &rows[y]));
                    }
                }
                let link = match linkage {
                    Linkage::Single => ds.iter().cloned().fold(f64::INFINITY, f64::min),
                    Linkage::Complete => ds.iter().cloned().fold(0.0, f64::max),
                    Linkage::Average => ds.iter().sum::<f64>() / ds.len() as f64,
                };
                if best.is_none_or(|(b, _, _)| link < b) {
                    best = Some((link, i, j));
                }
            }
        }
        let (distance, i, j) = best.expect("at least one pair");
        let (id_b, members_b) = active.swap_remove(j.max(i));
        let (id_a, members_a) = active.swap_remove(j.min(i));
        merges.push(Merge {
            a: id_a,
            b: id_b,
            distance,
            id: next_id,
        });
        let mut members = members_a;
        members.extend(members_b);
        active.push((next_id, members));
        next_id += 1;
    }
    Dendrogram { n, merges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
        ]
    }

    #[test]
    fn two_blobs_separate_at_k2() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = cluster(&two_blobs(), linkage);
            let labels = d.cut(2);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_ne!(labels[0], labels[3], "{linkage}");
        }
    }

    #[test]
    fn merge_distances_are_monotone_for_complete_linkage() {
        let d = cluster(&two_blobs(), Linkage::Complete);
        assert!(d
            .merges()
            .windows(2)
            .all(|w| w[1].distance >= w[0].distance - 1e-12));
    }

    #[test]
    fn cut_extremes() {
        let rows = two_blobs();
        let d = cluster(&rows, Linkage::Average);
        let all_separate = d.cut(rows.len());
        let mut sorted = all_separate.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), rows.len(), "k=n puts every point alone");
        let all_together = d.cut(1);
        assert!(all_together.iter().all(|&l| l == 0));
    }

    #[test]
    fn single_observation_degenerates() {
        let d = cluster(&[vec![1.0, 2.0]], Linkage::Single);
        assert_eq!(d.len(), 1);
        assert!(d.merges().is_empty());
        assert_eq!(d.cut(1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "cut size")]
    fn oversized_cut_rejected() {
        let d = cluster(&two_blobs(), Linkage::Single);
        let _ = d.cut(6);
    }
}
