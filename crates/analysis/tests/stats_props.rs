//! Property battery for the order-statistic kernels feeding the
//! replication subsystem: the interpolating quantile must agree with a
//! sort-based reference on fuzzed inputs, non-finite values must surface
//! as typed errors naming their position, and the seeded bootstrap CI
//! must contain the sample median and narrow as the sample grows. All
//! failures shrink and replay through the testkit harness
//! (`MLPERF_PROP_SEED=<seed>` reproduces the minimal counterexample).

use mlperf_analysis::stats::{
    bootstrap_ci_median, median, quantile, quantile_in, BootstrapScratch, StatsError,
};
use mlperf_testkit::prop::*;

/// Finite samples on a 1/128 grid (ties and negatives included).
fn arb_sample(len: std::ops::Range<usize>) -> impl Gen<Value = Vec<f64>> {
    vec_of((-80_000i64..80_000).prop_map(|m| m as f64 / 128.0), len)
}

/// An independently-written sort-based reference for the R-7 quantile.
fn reference_quantile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite reference input"));
    let rank = q * (sorted.len() as f64 - 1.0);
    let below = sorted[rank.floor() as usize];
    let above = sorted[rank.ceil() as usize];
    below + (above - below) * rank.fract()
}

#[test]
fn quantile_agrees_with_the_sort_based_reference() {
    let gen = (arb_sample(1..24), 0u32..=8).prop_map(|(xs, i)| (xs, f64::from(i) / 8.0));
    check("quantile vs sort reference", &gen, |(xs, q)| {
        let got = quantile(&xs, q).map_err(|e| e.to_string())?;
        let want = reference_quantile(&xs, q);
        if (got - want).abs() > 1e-9 * (1.0 + want.abs()) {
            return Err(format!("quantile({q}) = {got}, reference = {want}"));
        }
        Ok(())
    });
}

#[test]
fn quantile_is_monotone_in_q_and_bracketed_by_the_extremes() {
    let gen = (arb_sample(1..24), 0u32..=8, 0u32..=8);
    check("quantile monotone", &gen, |(xs, a, b)| {
        let (lo_q, hi_q) = (f64::from(a.min(b)) / 8.0, f64::from(a.max(b)) / 8.0);
        let lo = quantile(&xs, lo_q).map_err(|e| e.to_string())?;
        let hi = quantile(&xs, hi_q).map_err(|e| e.to_string())?;
        if lo > hi {
            return Err(format!("quantile({lo_q}) = {lo} > quantile({hi_q}) = {hi}"));
        }
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo < min || hi > max {
            return Err(format!("[{lo}, {hi}] escapes the sample range [{min}, {max}]"));
        }
        Ok(())
    });
}

#[test]
fn quantile_reuses_scratch_without_contamination() {
    // One scratch across all cases: stale contents from a previous (often
    // longer) sample must never leak into the next answer.
    let scratch = std::cell::RefCell::new(Vec::new());
    let gen = (arb_sample(1..24), 0u32..=8).prop_map(|(xs, i)| (xs, f64::from(i) / 8.0));
    check("quantile scratch reuse", &gen, |(xs, q)| {
        let got =
            quantile_in(&xs, q, &mut scratch.borrow_mut()).map_err(|e| e.to_string())?;
        let clean = quantile(&xs, q).map_err(|e| e.to_string())?;
        if got.to_bits() != clean.to_bits() {
            return Err(format!("dirty scratch gave {got}, clean buffer gave {clean}"));
        }
        Ok(())
    });
}

#[test]
fn non_finite_values_are_typed_errors_naming_the_first_offender() {
    let bad = elements(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
    let gen = (arb_sample(1..16), bad, 0usize..64).prop_map(|(mut xs, v, at)| {
        let at = at % xs.len();
        xs[at] = v;
        (xs, at)
    });
    check("non-finite is typed", &gen, |(xs, at)| {
        let first = xs
            .iter()
            .position(|x| !x.is_finite())
            .expect("one value was injected");
        assert!(first <= at, "injection position bounds the first offender");
        match median(&xs) {
            Err(StatsError::NonFinite { index, .. }) if index == first => {}
            other => return Err(format!("expected NonFinite at {first}, got {other:?}")),
        }
        let mut scratch = BootstrapScratch::new();
        match bootstrap_ci_median(&xs, 8, 0.9, 1, &mut scratch) {
            Err(StatsError::NonFinite { index, .. }) if index == first => Ok(()),
            other => Err(format!("bootstrap: expected NonFinite at {first}, got {other:?}")),
        }
    });
}

#[test]
fn bootstrap_ci_contains_the_median_and_narrows_with_n() {
    let gen = (arb_sample(6..16), 0u64..1 << 32);
    let scratch = std::cell::RefCell::new(BootstrapScratch::new());
    check("bootstrap contains & narrows", &gen, |(xs, seed)| {
        let scratch = &mut *scratch.borrow_mut();
        let m = median(&xs).map_err(|e| e.to_string())?;
        // Replicating the sample k-fold keeps the empirical distribution
        // but grows n, so the median's sampling spread must not widen.
        let mut widths = Vec::new();
        for k in [1usize, 4, 16] {
            let grown: Vec<f64> = xs.iter().copied().cycle().take(xs.len() * k).collect();
            let (lo, hi) =
                bootstrap_ci_median(&grown, 96, 0.95, seed, scratch).map_err(|e| e.to_string())?;
            if lo > m || m > hi {
                return Err(format!("CI [{lo}, {hi}] at k={k} excludes the median {m}"));
            }
            widths.push(hi - lo);
        }
        for pair in widths.windows(2) {
            if pair[1] > pair[0] + 1e-9 {
                return Err(format!("CI widened as n grew: {widths:?}"));
            }
        }
        Ok(())
    });
}
