//! Property-based tests for the analysis stack.

use mlperf_analysis::linalg::{symmetric_eigen, Matrix};
use mlperf_analysis::pca::Pca;
use mlperf_analysis::scheduling::{lpt_schedule, naive_schedule, optimal_schedule, JobTimes};
use mlperf_analysis::stats;
use mlperf_testkit::prop::*;

/// Random symmetric matrices of size 2..=6.
fn arb_symmetric() -> impl Gen<Value = Matrix> {
    (2usize..=6).prop_flat_map(|n| {
        vec_of(-10.0f64..10.0, just(n * (n + 1) / 2)).prop_map(move |vals| {
            let mut m = Matrix::zeros(n, n);
            let mut it = vals.into_iter();
            for i in 0..n {
                for j in i..n {
                    let v = it.next().expect("enough values");
                    m[(i, j)] = v;
                    m[(j, i)] = v;
                }
            }
            m
        })
    })
}

/// Random well-formed job sets: 2..6 jobs, each with times at widths
/// 1/2/4, weakly improving with width.
fn arb_jobs() -> impl Gen<Value = Vec<JobTimes>> {
    vec_of(
        (10.0f64..500.0, 0.5f64..1.0, 0.5f64..1.0)
            .prop_map(|(t1, f2, f4)| (t1, t1 * f2, t1 * f2 * f4)),
        2usize..6,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (t1, t2, t4))| JobTimes::new(format!("job{i}"), [(1, t1), (2, t2), (4, t4)]))
            .collect()
    })
}

/// Shared checker for `scheduling_invariants`, so the pinned regression
/// case below re-runs exactly the property's logic.
fn check_scheduling_invariants(jobs: &[JobTimes], g: u64) -> Result<(), String> {
    let naive = naive_schedule(jobs, g);
    let lpt = lpt_schedule(jobs, g);
    let best = optimal_schedule(jobs, g);

    prop_assert!(best.makespan <= lpt.makespan + 1e-9);
    prop_assert!(best.makespan <= naive.makespan + 1e-9);

    for sched in [&naive, &lpt, &best] {
        // Every job exactly once.
        let mut seen = vec![false; jobs.len()];
        for p in &sched.placements {
            prop_assert!(!seen[p.job], "job {} placed twice", p.job);
            seen[p.job] = true;
            prop_assert!(!p.gpus.is_empty());
            prop_assert!(p.gpus.len() <= g as usize);
        }
        prop_assert!(seen.iter().all(|&s| s));
        // No overlap on any GPU.
        for row in sched.gantt() {
            for w in row.windows(2) {
                prop_assert!(w[0].2 <= w[1].1 + 1e-9, "overlap {w:?}");
            }
        }
        // Makespan equals the max completion.
        let max_end = sched
            .placements
            .iter()
            .map(|p| p.end())
            .fold(0.0f64, f64::max);
        prop_assert!((sched.makespan - max_end).abs() < 1e-9);
    }

    // Area bound: makespan >= total best-case GPU-minutes / G.
    let area: f64 = jobs
        .iter()
        .map(|j| {
            j.widths()
                .filter(|&w| w <= g)
                .map(|w| w as f64 * j.time_at(w).expect("width present"))
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    prop_assert!(best.makespan >= area / g as f64 - 1e-9);

    // And >= the longest single job at its best feasible width.
    let longest: f64 = jobs
        .iter()
        .map(|j| {
            j.widths()
                .filter(|&w| w <= g)
                .map(|w| j.time_at(w).expect("width present"))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0f64, f64::max);
    prop_assert!(best.makespan >= longest - 1e-9);
    Ok(())
}

/// Pinned counterexample from the proptest era (the old
/// `properties.proptest-regressions` seed shrank to two identical jobs
/// with times {1: 10.0, 2: 5.0, 4: 2.5} on g = 3): perfectly-scaling
/// twins on an odd GPU count stress the width-choice tie-breaking.
#[test]
fn regression_scheduling_two_identical_jobs_on_three_gpus() {
    let jobs = vec![
        JobTimes::new("job0", [(1, 10.0), (2, 5.0), (4, 2.5)]),
        JobTimes::new("job1", [(1, 10.0), (2, 5.0), (4, 2.5)]),
    ];
    check_scheduling_invariants(&jobs, 3).unwrap();
}

mlperf_testkit::properties! {
    /// Jacobi: eigenvalues sum to the trace and V·Λ·Vᵀ reconstructs A.
    #[test]
    fn jacobi_reconstructs(m in arb_symmetric()) {
        let n = m.rows();
        let e = symmetric_eigen(&m);
        let trace: f64 = (0..n).map(|i| m[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - trace).abs() < 1e-8, "trace {trace} vs sum {sum}");

        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = e.values[i];
        }
        let recon = e.vectors.matmul(&d).matmul(&e.vectors.transpose());
        for i in 0..n {
            for j in 0..n {
                prop_assert!((recon[(i, j)] - m[(i, j)]).abs() < 1e-7);
            }
        }
    }

    /// Jacobi eigenvectors are orthonormal.
    #[test]
    fn jacobi_orthonormal(m in arb_symmetric()) {
        let n = m.rows();
        let e = symmetric_eigen(&m);
        let gram = e.vectors.transpose().matmul(&e.vectors);
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((gram[(i, j)] - expect).abs() < 1e-8);
            }
        }
    }

    /// PCA variance ratios are a descending probability distribution, and
    /// projecting the fitted rows reproduces the component variances.
    #[test]
    fn pca_variance_laws(
        rows in vec_of(vec_of(-100.0f64..100.0, just(4)), 3usize..10)
    ) {
        let pca = Pca::fit(&rows);
        let r = pca.explained_variance_ratio();
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9 || sum == 0.0);
        prop_assert!(r.windows(2).all(|w| w[0] >= w[1] - 1e-9));

        // Projected coordinates along PC1 have variance == eigenvalue 1.
        let coords: Vec<f64> = rows.iter().map(|row| pca.project(row, 1)[0]).collect();
        let var = stats::variance(&coords);
        prop_assert!((var - pca.eigenvalues()[0]).abs() < 1e-6 * (1.0 + var));
    }

    /// Scheduling: optimal ≤ LPT ≤-ish naive; all schedules place every
    /// job exactly once with no per-GPU overlap; and the optimum respects
    /// the area lower bound.
    #[test]
    fn scheduling_invariants(jobs in arb_jobs(), g in 1u64..=4) {
        check_scheduling_invariants(&jobs, g)?;
    }

    /// Pearson correlation is bounded and symmetric.
    #[test]
    fn pearson_bounded(
        pairs in vec_of((-1e3f64..1e3, -1e3f64..1e3), 2usize..40)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = stats::pearson(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        prop_assert!((r - stats::pearson(&ys, &xs)).abs() < 1e-12);
    }

    /// Geometric mean lies between min and max.
    #[test]
    fn geomean_between_extremes(xs in vec_of(0.001f64..1e6, 1usize..30)) {
        let g = stats::geometric_mean(&xs);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
    }
}
