//! Property-based tests for the hardware substrate.

use mlperf_hw::cpu::CpuModel;
use mlperf_hw::gpu::{GpuModel, Precision};
use mlperf_hw::interconnect::Link;
use mlperf_hw::topology::Topology;
use mlperf_hw::units::{Bandwidth, Bytes, FlopRate, Flops, Seconds};
use mlperf_testkit::prop::*;

/// Shared checker for `star_topology_routes`, so the pinned regression
/// case below re-runs exactly the property's logic.
fn check_star_topology(lane_choices: &[usize]) -> Result<(), String> {
    let widths = [4u32, 8, 16];
    let mut t = Topology::new("star");
    let cpu = t.add_cpu(CpuModel::XeonGold6148);
    let mut gpu_bw = Vec::new();
    for &c in lane_choices {
        let g = t.add_gpu(GpuModel::TeslaV100Pcie16);
        let link = Link::PcieGen3 { lanes: widths[c] };
        gpu_bw.push(link.effective_bandwidth().as_bytes_per_sec());
        t.connect(cpu, g, link);
    }
    let n = lane_choices.len() as u32;
    for a in 0..n {
        for b in (a + 1)..n {
            let p = t.gpu_peer_path(a, b).expect("star is connected");
            prop_assert_eq!(p.class, mlperf_hw::P2pClass::ThroughCpu);
            // The route's bottleneck is the slower of the two legs.
            let expect = gpu_bw[a as usize].min(gpu_bw[b as usize]);
            prop_assert!((p.bandwidth.as_bytes_per_sec() - expect).abs() < 1.0);
            prop_assert_eq!(p.path.hops(), 2);
        }
    }
    Ok(())
}

/// Pinned counterexample from the proptest era (the old
/// `properties.proptest-regressions` seed shrank to
/// `lane_choices = [0, 1, 1]`): mixed lane widths where the narrower leg
/// must win the bottleneck.
#[test]
fn regression_star_topology_lanes_0_1_1() {
    check_star_topology(&[0, 1, 1]).unwrap();
}

mlperf_testkit::properties! {
    /// Byte addition is associative and commutative.
    #[test]
    fn bytes_addition_laws(a in 0u64..1 << 40, b in 0u64..1 << 40, c in 0u64..1 << 40) {
        let (a, b, c) = (Bytes::new(a), Bytes::new(b), Bytes::new(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    /// Scaling bytes by a factor then its inverse round-trips within 1 byte
    /// per unit of magnitude.
    #[test]
    fn bytes_scale_round_trip(raw in 1u64..1 << 40, factor in 0.01f64..100.0) {
        let b = Bytes::new(raw);
        let there = b.scale(factor);
        let back = there.scale(1.0 / factor);
        let tolerance = (factor.max(1.0 / factor)).ceil() as u64 + 1;
        prop_assert!(back.as_u64().abs_diff(raw) <= tolerance);
    }

    /// Transfer time is monotone: more bytes or less bandwidth never
    /// finishes sooner.
    #[test]
    fn transfer_time_monotone(
        small in 1u64..1 << 30,
        extra in 0u64..1 << 30,
        bw_gb in 0.1f64..500.0,
        bw_extra in 0.0f64..500.0
    ) {
        let slow = Bandwidth::from_gb_per_sec(bw_gb);
        let fast = Bandwidth::from_gb_per_sec(bw_gb + bw_extra);
        let less = Bytes::new(small);
        let more = Bytes::new(small + extra);
        prop_assert!((more / slow).as_secs() >= (less / slow).as_secs());
        prop_assert!((less / fast).as_secs() <= (less / slow).as_secs());
    }

    /// Rate-from-observation inverts transfer-time: (B / t) * t == B.
    #[test]
    fn rate_inverts_time(bytes in 1u64..1 << 40, secs in 0.001f64..1e6) {
        let b = Bytes::new(bytes);
        let t = Seconds::new(secs);
        let bw = b / t;
        let t2 = b / bw;
        prop_assert!((t2.as_secs() - secs).abs() / secs < 1e-9);
    }

    /// Compute time scales inversely with the rate.
    #[test]
    fn compute_time_scales(flops in 1u64..1 << 50, rate_gf in 0.001f64..200_000.0) {
        let f = Flops::new(flops);
        let r = FlopRate::from_gflops(rate_gf);
        let t1 = f / r;
        let t2 = f / r.scale(2.0);
        prop_assert!((t1.as_secs() / t2.as_secs() - 2.0).abs() < 1e-9);
    }

    /// Seconds::max/min agree with ordering.
    #[test]
    fn seconds_lattice(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let (x, y) = (Seconds::new(a), Seconds::new(b));
        prop_assert!(x.max(y).as_secs() >= x.min(y).as_secs());
        prop_assert_eq!(x.max(y).as_secs() + x.min(y).as_secs(), a + b);
    }

    /// Every GPU model's ridge point is positive and ordered by precision
    /// speed.
    #[test]
    fn ridge_points_ordered(idx in 0usize..4) {
        let model = [
            GpuModel::TeslaV100Sxm2_16,
            GpuModel::TeslaV100Pcie16,
            GpuModel::TeslaV100Pcie32,
            GpuModel::TeslaP100Pcie16,
        ][idx];
        let spec = model.spec();
        let mut last = 0.0;
        for p in [Precision::Double, Precision::Single, Precision::TensorCore] {
            let ridge = spec.ridge_point(p);
            prop_assert!(ridge >= last);
            last = ridge;
        }
    }

    /// PCIe bandwidth is linear in lane count.
    #[test]
    fn pcie_linear_in_lanes(lanes in 1u32..=16) {
        let one = Link::PcieGen3 { lanes: 1 }.theoretical_bandwidth().as_bytes_per_sec();
        let many = Link::PcieGen3 { lanes }.theoretical_bandwidth().as_bytes_per_sec();
        prop_assert!((many - one * lanes as f64).abs() < 1.0);
    }

    /// In any random star topology (GPUs hanging off one CPU), every
    /// GPU-GPU route exists, is classified through-CPU, and its bottleneck
    /// bandwidth never exceeds the narrowest attached link.
    #[test]
    fn star_topology_routes(lane_choices in vec_of(0usize..3, 2usize..6)) {
        check_star_topology(&lane_choices)?;
    }

    /// Route bottleneck bandwidth equals the minimum over traversed links,
    /// and latency is the sum — on a random chain topology.
    #[test]
    fn chain_route_composition(widths in vec_of(1u32..=16, 1usize..6)) {
        let mut t = Topology::new("chain");
        let first = t.add_gpu(GpuModel::TeslaV100Pcie16);
        let mut prev = first;
        let mut min_bw = f64::INFINITY;
        let mut total_lat = 0.0;
        for &w in &widths {
            let sw = t.add_switch();
            let link = Link::PcieGen3 { lanes: w };
            min_bw = min_bw.min(link.effective_bandwidth().as_bytes_per_sec());
            total_lat += link.latency().as_secs();
            t.connect(prev, sw, link);
            prev = sw;
        }
        let last = t.add_gpu(GpuModel::TeslaV100Pcie16);
        t.connect(prev, last, Link::PCIE3_X16);
        min_bw = min_bw.min(Link::PCIE3_X16.effective_bandwidth().as_bytes_per_sec());
        total_lat += Link::PCIE3_X16.latency().as_secs();

        let p = t.gpu_peer_path(0, 1).expect("chain is connected");
        prop_assert!((p.bandwidth.as_bytes_per_sec() - min_bw).abs() < 1.0);
        prop_assert!((p.latency.as_secs() - total_lat).abs() < 1e-12);
    }
}
