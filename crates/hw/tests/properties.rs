//! Property-based tests for the hardware substrate.

use mlperf_hw::cpu::CpuModel;
use mlperf_hw::gpu::{GpuModel, Precision};
use mlperf_hw::interconnect::Link;
use mlperf_hw::partition::{PartitionError, PartitionProfile, PartitionSpec};
use mlperf_hw::topology::Topology;
use mlperf_hw::units::{Bandwidth, Bytes, FlopRate, Flops, Seconds};
use mlperf_testkit::prop::*;

/// The Volta-class SKUs that accept MIG-style slicing (Pascal refuses).
const SLICEABLE: [GpuModel; 4] = [
    GpuModel::TeslaV100Sxm2_16,
    GpuModel::TeslaV100Sxm2_32,
    GpuModel::TeslaV100Pcie16,
    GpuModel::TeslaV100Pcie32,
];

/// Shared checker for `star_topology_routes`, so the pinned regression
/// case below re-runs exactly the property's logic.
fn check_star_topology(lane_choices: &[usize]) -> Result<(), String> {
    let widths = [4u32, 8, 16];
    let mut t = Topology::new("star");
    let cpu = t.add_cpu(CpuModel::XeonGold6148);
    let mut gpu_bw = Vec::new();
    for &c in lane_choices {
        let g = t.add_gpu(GpuModel::TeslaV100Pcie16);
        let link = Link::PcieGen3 { lanes: widths[c] };
        gpu_bw.push(link.effective_bandwidth().as_bytes_per_sec());
        t.connect(cpu, g, link);
    }
    let n = lane_choices.len() as u32;
    for a in 0..n {
        for b in (a + 1)..n {
            let p = t.gpu_peer_path(a, b).expect("star is connected");
            prop_assert_eq!(p.class, mlperf_hw::P2pClass::ThroughCpu);
            // The route's bottleneck is the slower of the two legs.
            let expect = gpu_bw[a as usize].min(gpu_bw[b as usize]);
            prop_assert!((p.bandwidth.as_bytes_per_sec() - expect).abs() < 1.0);
            prop_assert_eq!(p.path.hops(), 2);
        }
    }
    Ok(())
}

/// Pinned counterexample from the proptest era (the old
/// `properties.proptest-regressions` seed shrank to
/// `lane_choices = [0, 1, 1]`): mixed lane widths where the narrower leg
/// must win the bottleneck.
#[test]
fn regression_star_topology_lanes_0_1_1() {
    check_star_topology(&[0, 1, 1]).unwrap();
}

mlperf_testkit::properties! {
    /// Byte addition is associative and commutative.
    #[test]
    fn bytes_addition_laws(a in 0u64..1 << 40, b in 0u64..1 << 40, c in 0u64..1 << 40) {
        let (a, b, c) = (Bytes::new(a), Bytes::new(b), Bytes::new(c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    /// Scaling bytes by a factor then its inverse round-trips within 1 byte
    /// per unit of magnitude.
    #[test]
    fn bytes_scale_round_trip(raw in 1u64..1 << 40, factor in 0.01f64..100.0) {
        let b = Bytes::new(raw);
        let there = b.scale(factor);
        let back = there.scale(1.0 / factor);
        let tolerance = (factor.max(1.0 / factor)).ceil() as u64 + 1;
        prop_assert!(back.as_u64().abs_diff(raw) <= tolerance);
    }

    /// Transfer time is monotone: more bytes or less bandwidth never
    /// finishes sooner.
    #[test]
    fn transfer_time_monotone(
        small in 1u64..1 << 30,
        extra in 0u64..1 << 30,
        bw_gb in 0.1f64..500.0,
        bw_extra in 0.0f64..500.0
    ) {
        let slow = Bandwidth::from_gb_per_sec(bw_gb);
        let fast = Bandwidth::from_gb_per_sec(bw_gb + bw_extra);
        let less = Bytes::new(small);
        let more = Bytes::new(small + extra);
        prop_assert!((more / slow).as_secs() >= (less / slow).as_secs());
        prop_assert!((less / fast).as_secs() <= (less / slow).as_secs());
    }

    /// Rate-from-observation inverts transfer-time: (B / t) * t == B.
    #[test]
    fn rate_inverts_time(bytes in 1u64..1 << 40, secs in 0.001f64..1e6) {
        let b = Bytes::new(bytes);
        let t = Seconds::new(secs);
        let bw = b / t;
        let t2 = b / bw;
        prop_assert!((t2.as_secs() - secs).abs() / secs < 1e-9);
    }

    /// Compute time scales inversely with the rate.
    #[test]
    fn compute_time_scales(flops in 1u64..1 << 50, rate_gf in 0.001f64..200_000.0) {
        let f = Flops::new(flops);
        let r = FlopRate::from_gflops(rate_gf);
        let t1 = f / r;
        let t2 = f / r.scale(2.0);
        prop_assert!((t1.as_secs() / t2.as_secs() - 2.0).abs() < 1e-9);
    }

    /// Seconds::max/min agree with ordering.
    #[test]
    fn seconds_lattice(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let (x, y) = (Seconds::new(a), Seconds::new(b));
        prop_assert!(x.max(y).as_secs() >= x.min(y).as_secs());
        prop_assert_eq!(x.max(y).as_secs() + x.min(y).as_secs(), a + b);
    }

    /// Every GPU model's ridge point is positive and ordered by precision
    /// speed.
    #[test]
    fn ridge_points_ordered(idx in 0usize..4) {
        let model = [
            GpuModel::TeslaV100Sxm2_16,
            GpuModel::TeslaV100Pcie16,
            GpuModel::TeslaV100Pcie32,
            GpuModel::TeslaP100Pcie16,
        ][idx];
        let spec = model.spec();
        let mut last = 0.0;
        for p in [Precision::Double, Precision::Single, Precision::TensorCore] {
            let ridge = spec.ridge_point(p);
            prop_assert!(ridge >= last);
            last = ridge;
        }
    }

    /// PCIe bandwidth is linear in lane count.
    #[test]
    fn pcie_linear_in_lanes(lanes in 1u32..=16) {
        let one = Link::PcieGen3 { lanes: 1 }.theoretical_bandwidth().as_bytes_per_sec();
        let many = Link::PcieGen3 { lanes }.theoretical_bandwidth().as_bytes_per_sec();
        prop_assert!((many - one * lanes as f64).abs() < 1.0);
    }

    /// In any random star topology (GPUs hanging off one CPU), every
    /// GPU-GPU route exists, is classified through-CPU, and its bottleneck
    /// bandwidth never exceeds the narrowest attached link.
    #[test]
    fn star_topology_routes(lane_choices in vec_of(0usize..3, 2usize..6)) {
        check_star_topology(&lane_choices)?;
    }

    /// A partition slice never exceeds its parent device on any resource:
    /// SMs, HBM capacity, HBM bandwidth, NVLink lanes, and every
    /// per-precision compute ceiling.
    #[test]
    fn partition_slice_never_exceeds_parent(
        model_idx in 0usize..4,
        profile_idx in 0usize..3,
        tenants in 1u32..=7,
    ) {
        let parent = SLICEABLE[model_idx].spec();
        let profile = PartitionProfile::ALL[profile_idx];
        let tenants = tenants.min(profile.slice_count());
        let spec = PartitionSpec::new(profile, tenants).expect("in-range tenants");
        let slice = spec.sliced_spec(&parent).expect("V100-class slices");
        prop_assert!(slice.sm_count() >= 1);
        prop_assert!(slice.sm_count() <= parent.sm_count());
        prop_assert!(slice.hbm_capacity() <= parent.hbm_capacity());
        prop_assert!(
            slice.hbm_bandwidth().as_bytes_per_sec()
                <= parent.hbm_bandwidth().as_bytes_per_sec()
        );
        prop_assert!(slice.nvlink_lanes() <= parent.nvlink_lanes());
        for p in Precision::ALL {
            prop_assert!(
                slice.peak_flop_rate(p).as_flops_per_sec()
                    <= parent.peak_flop_rate(p).as_flops_per_sec()
            );
            prop_assert!(
                slice.empirical_flop_rate(p).as_flops_per_sec()
                    <= parent.empirical_flop_rate(p).as_flops_per_sec()
            );
        }
    }

    /// Invalid slice layouts are typed errors, never a clamp: zero or
    /// oversubscribed tenant counts refuse at construction, Pascal refuses
    /// at slicing, and out-of-grammar tokens refuse at parse.
    #[test]
    fn invalid_partition_layouts_refuse_typed(
        profile_idx in 0usize..3,
        extra in 1u32..=9,
    ) {
        let profile = PartitionProfile::ALL[profile_idx];
        let slices = profile.slice_count();
        prop_assert_eq!(
            PartitionSpec::new(profile, 0),
            Err(PartitionError::ZeroTenants)
        );
        prop_assert_eq!(
            PartitionSpec::new(profile, slices + extra),
            Err(PartitionError::TooManyTenants { tenants: slices + extra, slices })
        );
        let pascal = GpuModel::TeslaP100Pcie16.spec();
        prop_assert_eq!(
            PartitionSpec::solo(profile).sliced_spec(&pascal),
            Err(PartitionError::UnsupportedDevice { model: GpuModel::TeslaP100Pcie16 })
        );
        let token = format!("1of{}x{}", slices, slices + extra);
        prop_assert_eq!(
            PartitionSpec::parse(&token),
            Err(PartitionError::TooManyTenants { tenants: slices + extra, slices })
        );
    }

    /// The co-location interference slowdown is ≥ 1 everywhere, exactly
    /// 1.0 for a sole tenant, and strictly monotone in the tenant count.
    #[test]
    fn interference_slowdown_laws(profile_idx in 0usize..3) {
        let profile = PartitionProfile::ALL[profile_idx];
        prop_assert_eq!(PartitionSpec::solo(profile).interference_slowdown(), 1.0);
        let mut last = 0.0;
        for t in 1..=profile.slice_count() {
            let s = PartitionSpec::new(profile, t)
                .expect("in-range tenants")
                .interference_slowdown();
            prop_assert!(s >= 1.0);
            prop_assert!(s > last);
            last = s;
        }
    }

    /// Canonical partition tokens round-trip through parse/display, and
    /// the two normalizing spellings (`full`, explicit `x1`) land on the
    /// canonical form.
    #[test]
    fn partition_tokens_round_trip(profile_idx in 0usize..3, tenants in 1u32..=7) {
        let profile = PartitionProfile::ALL[profile_idx];
        let tenants = tenants.min(profile.slice_count());
        let spec = PartitionSpec::new(profile, tenants).expect("in-range tenants");
        let token = spec.to_string();
        prop_assert_eq!(PartitionSpec::parse(&token), Ok(Some(spec)));
        let explicit = format!("1of{}x1", profile.slice_count());
        let normalized = PartitionSpec::parse(&explicit)
            .expect("grammatical")
            .expect("partitioned");
        prop_assert_eq!(normalized.to_string(), format!("1of{}", profile.slice_count()));
        prop_assert_eq!(PartitionSpec::parse("full"), Ok(None));
    }

    /// Route bottleneck bandwidth equals the minimum over traversed links,
    /// and latency is the sum — on a random chain topology.
    #[test]
    fn chain_route_composition(widths in vec_of(1u32..=16, 1usize..6)) {
        let mut t = Topology::new("chain");
        let first = t.add_gpu(GpuModel::TeslaV100Pcie16);
        let mut prev = first;
        let mut min_bw = f64::INFINITY;
        let mut total_lat = 0.0;
        for &w in &widths {
            let sw = t.add_switch();
            let link = Link::PcieGen3 { lanes: w };
            min_bw = min_bw.min(link.effective_bandwidth().as_bytes_per_sec());
            total_lat += link.latency().as_secs();
            t.connect(prev, sw, link);
            prev = sw;
        }
        let last = t.add_gpu(GpuModel::TeslaV100Pcie16);
        t.connect(prev, last, Link::PCIE3_X16);
        min_bw = min_bw.min(Link::PCIE3_X16.effective_bandwidth().as_bytes_per_sec());
        total_lat += Link::PCIE3_X16.latency().as_secs();

        let p = t.gpu_peer_path(0, 1).expect("chain is connected");
        prop_assert!((p.bandwidth.as_bytes_per_sec() - min_bw).abs() < 1.0);
        prop_assert!((p.latency.as_secs() - total_lat).abs() < 1e-12);
    }
}
