//! Hardware substrate for the MLPerf-demystified reproduction.
//!
//! This crate models the hardware the ISPASS 2020 study ran on, at the level
//! of detail its conclusions depend on:
//!
//! * [`gpu`] — Tesla V100 (PCIe and SXM2, 16/32 GB) and Tesla P100 device
//!   models with per-precision peak and empirical compute/memory ceilings;
//! * [`cpu`] — Xeon Gold 6148/6142 sockets and DDR4 DIMM populations;
//! * [`interconnect`] — PCIe 3.0, NVLink 2.0, and UPI link models;
//! * [`topology`] — interconnect graphs with GPU-to-GPU path classification
//!   (NVLink / PCIe-switch P2P / through-CPU / through-UPI);
//! * [`partition`] — MIG-style fractional device slices (SM/HBM/L2/NVLink
//!   shares with typed layout-validity rules) and a co-location
//!   interference model for tenants sharing a device;
//! * [`systems`] — the six Dell platforms of Table III plus the MLPerf v0.5
//!   reference machine, prebuilt;
//! * [`units`] — strongly-typed bytes, FLOPs, bandwidths, rates, durations.
//!
//! # Examples
//!
//! ```
//! use mlperf_hw::systems::SystemId;
//! use mlperf_hw::topology::P2pClass;
//!
//! let c4140k = SystemId::C4140K.spec();
//! let path = c4140k.topology().gpu_peer_path(0, 3)?;
//! assert_eq!(path.class, P2pClass::NvLinkDirect);
//! # Ok::<(), mlperf_hw::topology::TopologyError>(())
//! ```

pub mod cpu;
pub mod gpu;
pub mod interconnect;
pub mod numa;
pub mod partition;
pub mod power;
pub mod systems;
pub mod topology;
pub mod units;

pub use cpu::{CpuModel, CpuSpec, DimmConfig};
pub use gpu::{FormFactor, GpuModel, GpuSpec, Precision};
pub use partition::{PartitionError, PartitionProfile, PartitionSpec};
pub use interconnect::Link;
pub use systems::{SystemId, SystemSpec};
pub use topology::{Node, NodeId, P2pClass, Path, PeerPath, Topology, TopologyError};
pub use units::{Bandwidth, Bytes, FlopRate, Flops, Seconds};
