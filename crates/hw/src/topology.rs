//! System interconnect topology graphs.
//!
//! A [`Topology`] is a small undirected graph whose nodes are CPU sockets,
//! GPUs, and PCIe switches, and whose edges are [`Link`]s. Section V-E of the
//! paper shows that the decisive property of a platform is *how* two GPUs can
//! reach each other: over NVLink, over a shared PCIe switch (GPUDirect P2P in
//! a single root complex), or only through a CPU — possibly crossing a UPI
//! socket boundary. [`Topology::gpu_peer_path`] classifies exactly that.
//!
//! # Examples
//!
//! ```
//! use mlperf_hw::topology::{Topology, P2pClass};
//! use mlperf_hw::gpu::GpuModel;
//! use mlperf_hw::cpu::CpuModel;
//! use mlperf_hw::interconnect::Link;
//!
//! let mut t = Topology::new("toy");
//! let cpu = t.add_cpu(CpuModel::XeonGold6148);
//! let sw = t.add_switch();
//! let g0 = t.add_gpu(GpuModel::TeslaV100Pcie16);
//! let g1 = t.add_gpu(GpuModel::TeslaV100Pcie16);
//! t.connect(cpu, sw, Link::PCIE3_X16);
//! t.connect(sw, g0, Link::PCIE3_X16);
//! t.connect(sw, g1, Link::PCIE3_X16);
//! let path = t.gpu_peer_path(0, 1).unwrap();
//! assert_eq!(path.class, P2pClass::PcieSwitchP2p);
//! ```

use crate::cpu::CpuModel;
use crate::gpu::GpuModel;
use crate::interconnect::Link;
use crate::units::{Bandwidth, Seconds};
use std::collections::VecDeque;
use std::fmt;

/// Opaque handle to a node inside one [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// The raw index (valid only within the owning topology).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A vertex of the topology graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// A CPU socket.
    Cpu {
        /// Socket number (0-based).
        socket: u32,
        /// CPU SKU installed in this socket.
        model: CpuModel,
    },
    /// A GPU accelerator.
    Gpu {
        /// GPU ordinal (0-based, dense).
        index: u32,
        /// GPU SKU.
        model: GpuModel,
    },
    /// A PCIe switch (e.g. a PLX 96-lane part).
    PcieSwitch {
        /// Switch ordinal (0-based).
        index: u32,
    },
}

impl Node {
    /// Whether this node is a CPU socket.
    pub fn is_cpu(&self) -> bool {
        matches!(self, Node::Cpu { .. })
    }

    /// Whether this node is a GPU.
    pub fn is_gpu(&self) -> bool {
        matches!(self, Node::Gpu { .. })
    }
}

/// How a pair of GPUs reaches each other — the property §V-E shows drives
/// multi-GPU training time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum P2pClass {
    /// Dedicated NVLink connection (GPUDirect P2P at NVLink speed).
    NvLinkDirect,
    /// Same PCIe root complex through a switch: GPUDirect P2P at PCIe speed
    /// without touching host memory.
    PcieSwitchP2p,
    /// Data must bounce through a CPU's root ports and host memory.
    ThroughCpu,
    /// Data must additionally cross the UPI socket interconnect.
    ThroughUpi,
}

impl P2pClass {
    /// Whether this path supports GPUDirect peer-to-peer access.
    pub fn supports_p2p(self) -> bool {
        matches!(self, P2pClass::NvLinkDirect | P2pClass::PcieSwitchP2p)
    }
}

impl fmt::Display for P2pClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            P2pClass::NvLinkDirect => "NVLink P2P",
            P2pClass::PcieSwitchP2p => "PCIe-switch P2P",
            P2pClass::ThroughCpu => "through CPU",
            P2pClass::ThroughUpi => "through CPU + UPI",
        };
        f.write_str(s)
    }
}

/// A resolved route between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Node sequence from source to destination (inclusive).
    pub nodes: Vec<NodeId>,
    /// Links traversed, `nodes.len() - 1` of them.
    pub links: Vec<Link>,
}

impl Path {
    /// Bottleneck effective bandwidth along the route.
    ///
    /// # Panics
    ///
    /// Panics if the path has no links (source == destination).
    pub fn bottleneck_bandwidth(&self) -> Bandwidth {
        assert!(!self.links.is_empty(), "degenerate path has no bandwidth");
        self.links
            .iter()
            .map(|l| l.effective_bandwidth())
            .fold(Bandwidth::new(f64::MAX / 2.0), Bandwidth::min)
    }

    /// Accumulated one-way latency along the route.
    pub fn latency(&self) -> Seconds {
        self.links.iter().map(|l| l.latency()).sum()
    }

    /// Number of hops (edges) in the route.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// A GPU-to-GPU route together with its P2P classification.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerPath {
    /// The classification (§V-E).
    pub class: P2pClass,
    /// Bottleneck effective bandwidth of the route.
    pub bandwidth: Bandwidth,
    /// One-way latency of the route.
    pub latency: Seconds,
    /// The underlying route.
    pub path: Path,
}

/// Errors raised by topology queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The requested GPU ordinal does not exist.
    NoSuchGpu(u32),
    /// Two nodes are not connected by any sequence of links.
    Disconnected(NodeId, NodeId),
    /// The topology contains no CPU node.
    NoCpu,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoSuchGpu(i) => write!(f, "no GPU with ordinal {i}"),
            TopologyError::Disconnected(a, b) => {
                write!(f, "nodes {} and {} are disconnected", a.0, b.0)
            }
            TopologyError::NoCpu => f.write_str("topology has no CPU node"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected interconnect graph for one server chassis.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    name: String,
    nodes: Vec<Node>,
    /// Adjacency: for each node, `(neighbor, link)` pairs.
    adjacency: Vec<Vec<(NodeId, Link)>>,
    gpu_nodes: Vec<NodeId>,
    cpu_nodes: Vec<NodeId>,
}

impl Topology {
    /// Create an empty topology with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            nodes: Vec::new(),
            adjacency: Vec::new(),
            gpu_nodes: Vec::new(),
            cpu_nodes: Vec::new(),
        }
    }

    /// The descriptive name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        self.adjacency.push(Vec::new());
        id
    }

    /// Add a CPU socket; sockets are numbered in insertion order.
    pub fn add_cpu(&mut self, model: CpuModel) -> NodeId {
        let socket = self.cpu_nodes.len() as u32;
        let id = self.push_node(Node::Cpu { socket, model });
        self.cpu_nodes.push(id);
        id
    }

    /// Add a GPU; GPUs are numbered in insertion order.
    pub fn add_gpu(&mut self, model: GpuModel) -> NodeId {
        let index = self.gpu_nodes.len() as u32;
        let id = self.push_node(Node::Gpu { index, model });
        self.gpu_nodes.push(id);
        id
    }

    /// Add a PCIe switch.
    pub fn add_switch(&mut self) -> NodeId {
        let index = self
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::PcieSwitch { .. }))
            .count() as u32;
        self.push_node(Node::PcieSwitch { index })
    }

    /// Connect two nodes with a link (undirected).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: Link) {
        assert!(
            a.0 < self.nodes.len() && b.0 < self.nodes.len(),
            "node id out of range"
        );
        assert_ne!(a, b, "self-loops are not meaningful");
        self.adjacency[a.0].push((b, link));
        self.adjacency[b.0].push((a, link));
    }

    /// The node payload for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id.0]
    }

    /// Number of GPUs in the chassis.
    pub fn gpu_count(&self) -> usize {
        self.gpu_nodes.len()
    }

    /// Number of CPU sockets in the chassis.
    pub fn cpu_count(&self) -> usize {
        self.cpu_nodes.len()
    }

    /// Node ids of all GPUs, in ordinal order.
    pub fn gpus(&self) -> &[NodeId] {
        &self.gpu_nodes
    }

    /// Node ids of all CPU sockets, in socket order.
    pub fn cpus(&self) -> &[NodeId] {
        &self.cpu_nodes
    }

    /// The GPU model of ordinal `gpu` (errors if out of range).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoSuchGpu`] for an unknown ordinal.
    pub fn gpu_model(&self, gpu: u32) -> Result<GpuModel, TopologyError> {
        let id = *self
            .gpu_nodes
            .get(gpu as usize)
            .ok_or(TopologyError::NoSuchGpu(gpu))?;
        match self.nodes[id.0] {
            Node::Gpu { model, .. } => Ok(model),
            _ => unreachable!("gpu_nodes only holds GPU nodes"),
        }
    }

    /// Breadth-first min-hop route between two nodes, preferring (among
    /// equal-hop routes) the one discovered first in insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Disconnected`] if no route exists.
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<Path, TopologyError> {
        if from == to {
            return Ok(Path {
                nodes: vec![from],
                links: Vec::new(),
            });
        }
        let mut prev: Vec<Option<(NodeId, Link)>> = vec![None; self.nodes.len()];
        let mut visited = vec![false; self.nodes.len()];
        let mut queue = VecDeque::new();
        visited[from.0] = true;
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                break;
            }
            for &(next, link) in &self.adjacency[cur.0] {
                if !visited[next.0] {
                    visited[next.0] = true;
                    prev[next.0] = Some((cur, link));
                    queue.push_back(next);
                }
            }
        }
        if !visited[to.0] {
            return Err(TopologyError::Disconnected(from, to));
        }
        let mut nodes = vec![to];
        let mut links = Vec::new();
        let mut cur = to;
        while let Some((p, link)) = prev[cur.0] {
            nodes.push(p);
            links.push(link);
            cur = p;
        }
        nodes.reverse();
        links.reverse();
        Ok(Path { nodes, links })
    }

    /// Route and classify the path between two GPUs (by ordinal).
    ///
    /// Classification rules, in priority order:
    /// 1. a direct NVLink edge ⇒ [`P2pClass::NvLinkDirect`];
    /// 2. a min-hop route touching no CPU ⇒ [`P2pClass::PcieSwitchP2p`];
    /// 3. a route crossing a UPI link ⇒ [`P2pClass::ThroughUpi`];
    /// 4. otherwise ⇒ [`P2pClass::ThroughCpu`].
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoSuchGpu`] for unknown ordinals and
    /// [`TopologyError::Disconnected`] when no route exists.
    pub fn gpu_peer_path(&self, a: u32, b: u32) -> Result<PeerPath, TopologyError> {
        let na = *self
            .gpu_nodes
            .get(a as usize)
            .ok_or(TopologyError::NoSuchGpu(a))?;
        let nb = *self
            .gpu_nodes
            .get(b as usize)
            .ok_or(TopologyError::NoSuchGpu(b))?;
        assert_ne!(na, nb, "peer path between a GPU and itself is meaningless");

        // Rule 1: direct NVLink edge.
        if let Some(&(_, link)) = self.adjacency[na.0]
            .iter()
            .find(|(n, l)| *n == nb && matches!(l, Link::NvLink { .. }))
        {
            let path = Path {
                nodes: vec![na, nb],
                links: vec![link],
            };
            return Ok(PeerPath {
                class: P2pClass::NvLinkDirect,
                bandwidth: path.bottleneck_bandwidth(),
                latency: path.latency(),
                path,
            });
        }

        let path = self.route(na, nb)?;
        let touches_cpu = path.nodes.iter().any(|&n| self.nodes[n.0].is_cpu());
        let crosses_upi = path.links.iter().any(|l| matches!(l, Link::Upi { .. }));
        let class = if !touches_cpu {
            P2pClass::PcieSwitchP2p
        } else if crosses_upi {
            P2pClass::ThroughUpi
        } else {
            P2pClass::ThroughCpu
        };
        Ok(PeerPath {
            class,
            bandwidth: path.bottleneck_bandwidth(),
            latency: path.latency(),
            path,
        })
    }

    /// The host route for a GPU: min-hop path to the nearest CPU socket.
    /// This is the road the input pipeline's H2D copies travel.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoSuchGpu`], [`TopologyError::NoCpu`], or
    /// [`TopologyError::Disconnected`] as appropriate.
    pub fn gpu_host_path(&self, gpu: u32) -> Result<Path, TopologyError> {
        let g = *self
            .gpu_nodes
            .get(gpu as usize)
            .ok_or(TopologyError::NoSuchGpu(gpu))?;
        if self.cpu_nodes.is_empty() {
            return Err(TopologyError::NoCpu);
        }
        let mut best: Option<Path> = None;
        for &cpu in &self.cpu_nodes {
            if let Ok(p) = self.route(g, cpu) {
                let better = match &best {
                    None => true,
                    Some(b) => p.hops() < b.hops(),
                };
                if better {
                    best = Some(p);
                }
            }
        }
        best.ok_or(TopologyError::Disconnected(g, self.cpu_nodes[0]))
    }

    /// Render the topology as GraphViz DOT (for documentation and
    /// debugging; `dot -Tsvg` draws the chassis).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("graph \"{}\" {{\n", self.name);
        for (i, node) in self.nodes.iter().enumerate() {
            let (label, shape) = match node {
                Node::Cpu { socket, model } => (format!("CPU{socket}\\n{model}"), "box"),
                Node::Gpu { index, model } => (format!("GPU{index}\\n{model}"), "ellipse"),
                Node::PcieSwitch { index } => (format!("SW{index}"), "diamond"),
            };
            writeln!(out, "  n{i} [label=\"{label}\", shape={shape}];")
                .expect("writing to a String cannot fail");
        }
        for (a, neighbors) in self.adjacency.iter().enumerate() {
            for &(b, link) in neighbors {
                if a < b.0 {
                    writeln!(out, "  n{a} -- n{} [label=\"{link}\"];", b.0)
                        .expect("writing to a String cannot fail");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// The worst (slowest-class, then lowest-bandwidth) peer path over all
    /// GPU pairs in a set — the link a ring all-reduce must cross.
    ///
    /// # Errors
    ///
    /// Propagates routing errors; errors if `gpus` has fewer than 2 entries.
    pub fn worst_peer_path(&self, gpus: &[u32]) -> Result<PeerPath, TopologyError> {
        assert!(gpus.len() >= 2, "need at least two GPUs for a peer path");
        let mut worst: Option<PeerPath> = None;
        for (i, &a) in gpus.iter().enumerate() {
            for &b in &gpus[i + 1..] {
                let p = self.gpu_peer_path(a, b)?;
                let replace = match &worst {
                    None => true,
                    Some(w) => {
                        (
                            p.class,
                            std::cmp::Reverse(p.bandwidth.as_bytes_per_sec() as u64),
                        ) > (
                            w.class,
                            std::cmp::Reverse(w.bandwidth.as_bytes_per_sec() as u64),
                        )
                    }
                };
                if replace {
                    worst = Some(p);
                }
            }
        }
        Ok(worst.expect("loop ran at least once"))
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} CPUs, {} GPUs)",
            self.name,
            self.cpu_count(),
            self.gpu_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two GPUs behind one switch behind one CPU.
    fn switch_topology() -> Topology {
        let mut t = Topology::new("switch");
        let cpu = t.add_cpu(CpuModel::XeonGold6148);
        let sw = t.add_switch();
        let g0 = t.add_gpu(GpuModel::TeslaV100Pcie16);
        let g1 = t.add_gpu(GpuModel::TeslaV100Pcie16);
        t.connect(cpu, sw, Link::PCIE3_X16);
        t.connect(sw, g0, Link::PCIE3_X16);
        t.connect(sw, g1, Link::PCIE3_X16);
        t
    }

    /// Two sockets, one GPU each, joined by UPI.
    fn upi_topology() -> Topology {
        let mut t = Topology::new("upi");
        let c0 = t.add_cpu(CpuModel::XeonGold6148);
        let c1 = t.add_cpu(CpuModel::XeonGold6148);
        let g0 = t.add_gpu(GpuModel::TeslaV100Pcie32);
        let g1 = t.add_gpu(GpuModel::TeslaV100Pcie32);
        t.connect(c0, c1, Link::UPI_X1);
        t.connect(c0, g0, Link::PCIE3_X16);
        t.connect(c1, g1, Link::PCIE3_X16);
        t
    }

    #[test]
    fn switch_path_is_p2p_without_cpu() {
        let t = switch_topology();
        let p = t.gpu_peer_path(0, 1).unwrap();
        assert_eq!(p.class, P2pClass::PcieSwitchP2p);
        assert!(p.class.supports_p2p());
        assert_eq!(p.path.hops(), 2);
    }

    #[test]
    fn upi_path_classified_and_bottlenecked() {
        let t = upi_topology();
        let p = t.gpu_peer_path(0, 1).unwrap();
        assert_eq!(p.class, P2pClass::ThroughUpi);
        assert!(!p.class.supports_p2p());
        // Bottleneck is the PCIe x16 (13.4 GB/s eff) vs UPI (16.6 GB/s eff).
        let pcie_eff = Link::PCIE3_X16.effective_bandwidth().as_bytes_per_sec();
        assert!((p.bandwidth.as_bytes_per_sec() - pcie_eff).abs() < 1.0);
    }

    #[test]
    fn nvlink_edge_wins_over_pcie_route() {
        let mut t = switch_topology();
        let g0 = t.gpus()[0];
        let g1 = t.gpus()[1];
        t.connect(g0, g1, Link::NvLink { lanes: 2 });
        let p = t.gpu_peer_path(0, 1).unwrap();
        assert_eq!(p.class, P2pClass::NvLinkDirect);
        assert!((p.bandwidth.as_gb_per_sec() - 45.0).abs() < 1e-6); // 50 * 0.9
        assert_eq!(p.path.hops(), 1);
    }

    #[test]
    fn same_socket_pcie_is_through_cpu() {
        let mut t = Topology::new("t");
        let c = t.add_cpu(CpuModel::XeonGold6148);
        let g0 = t.add_gpu(GpuModel::TeslaV100Pcie16);
        let g1 = t.add_gpu(GpuModel::TeslaV100Pcie16);
        t.connect(c, g0, Link::PCIE3_X16);
        t.connect(c, g1, Link::PCIE3_X16);
        let p = t.gpu_peer_path(0, 1).unwrap();
        assert_eq!(p.class, P2pClass::ThroughCpu);
    }

    #[test]
    fn host_path_finds_nearest_cpu() {
        let t = switch_topology();
        let p = t.gpu_host_path(1).unwrap();
        assert_eq!(p.hops(), 2); // gpu -> switch -> cpu
        let t2 = upi_topology();
        assert_eq!(t2.gpu_host_path(0).unwrap().hops(), 1);
    }

    #[test]
    fn route_to_self_is_degenerate() {
        let t = switch_topology();
        let g = t.gpus()[0];
        let p = t.route(g, g).unwrap();
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn disconnected_nodes_error() {
        let mut t = Topology::new("parts");
        let c = t.add_cpu(CpuModel::XeonGold6148);
        let g = t.add_gpu(GpuModel::TeslaV100Pcie16);
        // no edge between them
        assert_eq!(t.route(c, g), Err(TopologyError::Disconnected(c, g)));
    }

    #[test]
    fn unknown_gpu_ordinal_errors() {
        let t = switch_topology();
        assert!(matches!(
            t.gpu_peer_path(0, 9),
            Err(TopologyError::NoSuchGpu(9))
        ));
        assert!(matches!(
            t.gpu_host_path(7),
            Err(TopologyError::NoSuchGpu(7))
        ));
        assert!(matches!(t.gpu_model(5), Err(TopologyError::NoSuchGpu(5))));
    }

    #[test]
    fn worst_peer_path_picks_slowest_class() {
        // 4 GPUs: 0-1 NVLink'd, 2-3 NVLink'd, pairs bridged only through CPU.
        let mut t = Topology::new("mixed");
        let c = t.add_cpu(CpuModel::XeonGold6148);
        let gpus: Vec<_> = (0..4)
            .map(|_| t.add_gpu(GpuModel::TeslaV100Sxm2_16))
            .collect();
        for &g in &gpus {
            t.connect(c, g, Link::PCIE3_X16);
        }
        t.connect(gpus[0], gpus[1], Link::NvLink { lanes: 2 });
        t.connect(gpus[2], gpus[3], Link::NvLink { lanes: 2 });
        let worst = t.worst_peer_path(&[0, 1, 2, 3]).unwrap();
        assert_eq!(worst.class, P2pClass::ThroughCpu);
        let best_subset = t.worst_peer_path(&[0, 1]).unwrap();
        assert_eq!(best_subset.class, P2pClass::NvLinkDirect);
    }

    #[test]
    fn gpu_model_lookup() {
        let t = upi_topology();
        assert_eq!(t.gpu_model(0).unwrap(), GpuModel::TeslaV100Pcie32);
    }

    #[test]
    fn display_mentions_counts() {
        let t = switch_topology();
        assert_eq!(t.to_string(), "switch (1 CPUs, 2 GPUs)");
    }

    #[test]
    fn dot_export_lists_every_node_and_edge_once() {
        let t = switch_topology();
        let dot = t.to_dot();
        assert!(dot.starts_with("graph \"switch\" {"));
        assert_eq!(dot.matches("shape=box").count(), 1); // CPU
        assert_eq!(dot.matches("shape=ellipse").count(), 2); // GPUs
        assert_eq!(dot.matches("shape=diamond").count(), 1); // switch
        assert_eq!(dot.matches(" -- ").count(), 3, "undirected edges once each");
        assert!(dot.contains("PCIe 3.0 x16"));
    }
}
