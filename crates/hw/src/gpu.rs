//! GPU device models.
//!
//! The study uses NVIDIA Tesla V100 accelerators in two form factors (PCIe
//! add-in card and SXM2 mezzanine) plus the Tesla P100 of the MLPerf v0.5
//! reference machine. A [`GpuSpec`] captures exactly the parameters the
//! paper's conclusions depend on: peak compute rates per precision (including
//! Tensor Cores), HBM2 capacity and bandwidth, and the number of NVLink lanes
//! the form factor exposes.
//!
//! Peak numbers follow the NVIDIA V100/P100 datasheets; *empirical* ceilings
//! (what the Empirical Roofline Toolkit measures, Fig. 2 of the paper) are
//! derived via fixed derating factors in [`GpuSpec::empirical_flop_rate`] and
//! [`GpuSpec::empirical_hbm_bandwidth`].

use crate::units::{Bandwidth, Bytes, FlopRate};
use std::fmt;

/// Numeric precision of a compute kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// IEEE double precision (FP64).
    Double,
    /// IEEE single precision (FP32).
    Single,
    /// IEEE half precision (FP16) on the regular SIMT pipeline.
    Half,
    /// FP16 matrix math on Tensor Cores (V100 only).
    TensorCore,
}

impl Precision {
    /// All precisions, in decreasing width.
    pub const ALL: [Precision; 4] = [
        Precision::Double,
        Precision::Single,
        Precision::Half,
        Precision::TensorCore,
    ];

    /// Bytes per scalar element at this precision (Tensor Core math is FP16).
    pub fn element_bytes(self) -> u64 {
        match self {
            Precision::Double => 8,
            Precision::Single => 4,
            Precision::Half | Precision::TensorCore => 2,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::Double => "FP64",
            Precision::Single => "FP32",
            Precision::Half => "FP16",
            Precision::TensorCore => "FP16-TC",
        };
        f.write_str(s)
    }
}

/// Physical packaging of the accelerator, which determines its interconnect
/// options (SXM2 exposes NVLink; PCIe cards do not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormFactor {
    /// Full-height/full-length PCI Express add-in card.
    PcieCard,
    /// SXM2 mezzanine module (NVLink-capable).
    Sxm2,
}

impl fmt::Display for FormFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormFactor::PcieCard => f.write_str("PCIe Full Height/Length"),
            FormFactor::Sxm2 => f.write_str("SXM2"),
        }
    }
}

/// The GPU SKUs that appear in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuModel {
    /// Tesla V100 SXM2 with 16 GB HBM2 (C4140 K and M).
    TeslaV100Sxm2_16,
    /// Tesla V100 SXM2 with 32 GB HBM2.
    TeslaV100Sxm2_32,
    /// Tesla V100 PCIe with 16 GB HBM2 (C4140 B, DSS 8440).
    TeslaV100Pcie16,
    /// Tesla V100 PCIe with 32 GB HBM2 (T640, R940 XA).
    TeslaV100Pcie32,
    /// Tesla P100 PCIe 16 GB — the MLPerf v0.5 reference machine's GPU.
    TeslaP100Pcie16,
}

impl GpuModel {
    /// The full specification sheet for this SKU.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuModel::TeslaV100Sxm2_16 => GpuSpec {
                model: self,
                name: "Tesla V100-SXM2-16GB",
                form_factor: FormFactor::Sxm2,
                sm_count: 80,
                boost_clock_mhz: 1530,
                peak_fp64: FlopRate::from_tflops(7.8),
                peak_fp32: FlopRate::from_tflops(15.7),
                peak_fp16: FlopRate::from_tflops(31.4),
                peak_tensor: FlopRate::from_tflops(125.0),
                hbm_capacity: Bytes::from_gib(16),
                hbm_bandwidth: Bandwidth::from_gb_per_sec(900.0),
                nvlink_lanes: 6,
            },
            GpuModel::TeslaV100Sxm2_32 => GpuSpec {
                hbm_capacity: Bytes::from_gib(32),
                name: "Tesla V100-SXM2-32GB",
                ..GpuModel::TeslaV100Sxm2_16.spec()
            }
            .with_model(self),
            GpuModel::TeslaV100Pcie16 => GpuSpec {
                model: self,
                name: "Tesla V100-PCIE-16GB",
                form_factor: FormFactor::PcieCard,
                sm_count: 80,
                boost_clock_mhz: 1380,
                peak_fp64: FlopRate::from_tflops(7.0),
                peak_fp32: FlopRate::from_tflops(14.0),
                peak_fp16: FlopRate::from_tflops(28.0),
                peak_tensor: FlopRate::from_tflops(112.0),
                hbm_capacity: Bytes::from_gib(16),
                hbm_bandwidth: Bandwidth::from_gb_per_sec(900.0),
                nvlink_lanes: 0,
            },
            GpuModel::TeslaV100Pcie32 => GpuSpec {
                hbm_capacity: Bytes::from_gib(32),
                name: "Tesla V100-PCIE-32GB",
                ..GpuModel::TeslaV100Pcie16.spec()
            }
            .with_model(self),
            GpuModel::TeslaP100Pcie16 => GpuSpec {
                model: self,
                name: "Tesla P100-PCIE-16GB",
                form_factor: FormFactor::PcieCard,
                sm_count: 56,
                boost_clock_mhz: 1303,
                peak_fp64: FlopRate::from_tflops(4.7),
                peak_fp32: FlopRate::from_tflops(9.3),
                peak_fp16: FlopRate::from_tflops(18.7),
                // Pascal has no Tensor Cores: FP16 runs on the SIMT pipeline.
                peak_tensor: FlopRate::from_tflops(18.7),
                hbm_capacity: Bytes::from_gib(16),
                hbm_bandwidth: Bandwidth::from_gb_per_sec(732.0),
                nvlink_lanes: 0,
            },
        }
    }

    /// Whether this SKU has Tensor Cores (Volta yes, Pascal no).
    pub fn has_tensor_cores(self) -> bool {
        !matches!(self, GpuModel::TeslaP100Pcie16)
    }
}

impl fmt::Display for GpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Full specification of a GPU SKU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    model: GpuModel,
    name: &'static str,
    form_factor: FormFactor,
    sm_count: u32,
    boost_clock_mhz: u32,
    peak_fp64: FlopRate,
    peak_fp32: FlopRate,
    peak_fp16: FlopRate,
    peak_tensor: FlopRate,
    hbm_capacity: Bytes,
    hbm_bandwidth: Bandwidth,
    nvlink_lanes: u32,
}

/// Fraction of peak compute the Empirical Roofline Toolkit attains on V100
/// (Fig. 2 plots empirical, not datasheet, ceilings).
const EMPIRICAL_COMPUTE_FRACTION: f64 = 0.93;
/// Fraction of datasheet HBM2 bandwidth attainable in practice (~830/900 on
/// V100 per ERT).
const EMPIRICAL_HBM_FRACTION: f64 = 0.92;

impl GpuSpec {
    fn with_model(mut self, model: GpuModel) -> Self {
        self.model = model;
        self
    }

    /// The SKU this spec describes.
    pub fn model(&self) -> GpuModel {
        self.model
    }

    /// Marketing name, e.g. `"Tesla V100-SXM2-16GB"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Physical packaging.
    pub fn form_factor(&self) -> FormFactor {
        self.form_factor
    }

    /// Number of streaming multiprocessors.
    pub fn sm_count(&self) -> u32 {
        self.sm_count
    }

    /// Boost clock in MHz.
    pub fn boost_clock_mhz(&self) -> u32 {
        self.boost_clock_mhz
    }

    /// Datasheet peak compute rate at the given precision.
    pub fn peak_flop_rate(&self, precision: Precision) -> FlopRate {
        match precision {
            Precision::Double => self.peak_fp64,
            Precision::Single => self.peak_fp32,
            Precision::Half => self.peak_fp16,
            Precision::TensorCore => self.peak_tensor,
        }
    }

    /// Empirically attainable compute ceiling at the given precision, as the
    /// Empirical Roofline Toolkit would measure it.
    pub fn empirical_flop_rate(&self, precision: Precision) -> FlopRate {
        self.peak_flop_rate(precision)
            .scale(EMPIRICAL_COMPUTE_FRACTION)
    }

    /// HBM2 device-memory capacity.
    pub fn hbm_capacity(&self) -> Bytes {
        self.hbm_capacity
    }

    /// Datasheet HBM2 bandwidth.
    pub fn hbm_bandwidth(&self) -> Bandwidth {
        self.hbm_bandwidth
    }

    /// Empirically attainable HBM2 bandwidth.
    pub fn empirical_hbm_bandwidth(&self) -> Bandwidth {
        self.hbm_bandwidth.scale(EMPIRICAL_HBM_FRACTION)
    }

    /// Number of NVLink lanes this form factor exposes (0 for PCIe cards).
    pub fn nvlink_lanes(&self) -> u32 {
        self.nvlink_lanes
    }

    /// Arithmetic intensity (FLOP/byte) of the roofline ridge point at the
    /// given precision: workloads below it are memory-bound on this device.
    pub fn ridge_point(&self, precision: Precision) -> f64 {
        self.empirical_flop_rate(precision).as_flops_per_sec()
            / self.empirical_hbm_bandwidth().as_bytes_per_sec()
    }

    /// A MIG-style slice of this device: `sm_count` granted SMs with every
    /// compute ceiling scaled by `compute_scale`, a fixed HBM allocation,
    /// bandwidth scaled by `bw_scale`, and a lane share of the
    /// interconnect. Only [`crate::partition`] constructs these — layout
    /// validity (and the refusal rules) live there.
    pub(crate) fn slice(
        &self,
        sm_count: u32,
        compute_scale: f64,
        hbm_capacity: Bytes,
        bw_scale: f64,
        nvlink_lanes: u32,
    ) -> GpuSpec {
        GpuSpec {
            model: self.model,
            name: self.name,
            form_factor: self.form_factor,
            sm_count,
            boost_clock_mhz: self.boost_clock_mhz,
            peak_fp64: self.peak_fp64.scale(compute_scale),
            peak_fp32: self.peak_fp32.scale(compute_scale),
            peak_fp16: self.peak_fp16.scale(compute_scale),
            peak_tensor: self.peak_tensor.scale(compute_scale),
            hbm_capacity,
            hbm_bandwidth: self.hbm_bandwidth.scale(bw_scale),
            nvlink_lanes,
        }
    }
}

impl fmt::Display for GpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} SMs @ {} MHz, {} HBM2 @ {}, {} FP32)",
            self.name,
            self.sm_count,
            self.boost_clock_mhz,
            self.hbm_capacity,
            self.hbm_bandwidth,
            self.peak_fp32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_sxm2_datasheet_numbers() {
        let spec = GpuModel::TeslaV100Sxm2_16.spec();
        assert_eq!(spec.sm_count(), 80);
        assert_eq!(spec.form_factor(), FormFactor::Sxm2);
        assert_eq!(spec.nvlink_lanes(), 6);
        assert!((spec.peak_flop_rate(Precision::Single).as_tflops() - 15.7).abs() < 1e-9);
        assert!((spec.peak_flop_rate(Precision::TensorCore).as_tflops() - 125.0).abs() < 1e-9);
        assert_eq!(spec.hbm_capacity(), Bytes::from_gib(16));
    }

    #[test]
    fn v100_pcie_has_no_nvlink_and_lower_clocks() {
        let pcie = GpuModel::TeslaV100Pcie16.spec();
        let sxm2 = GpuModel::TeslaV100Sxm2_16.spec();
        assert_eq!(pcie.nvlink_lanes(), 0);
        assert!(pcie.boost_clock_mhz() < sxm2.boost_clock_mhz());
        assert!(
            pcie.peak_flop_rate(Precision::Single).as_tflops()
                < sxm2.peak_flop_rate(Precision::Single).as_tflops()
        );
    }

    #[test]
    fn thirty_two_gig_variants_differ_only_in_capacity() {
        let a = GpuModel::TeslaV100Pcie16.spec();
        let b = GpuModel::TeslaV100Pcie32.spec();
        assert_eq!(b.hbm_capacity(), Bytes::from_gib(32));
        assert_eq!(a.sm_count(), b.sm_count());
        assert_eq!(
            a.peak_flop_rate(Precision::Single),
            b.peak_flop_rate(Precision::Single)
        );
    }

    #[test]
    fn p100_lacks_tensor_cores() {
        assert!(!GpuModel::TeslaP100Pcie16.has_tensor_cores());
        assert!(GpuModel::TeslaV100Sxm2_16.has_tensor_cores());
        let p100 = GpuModel::TeslaP100Pcie16.spec();
        // Without Tensor Cores the "tensor" rate is just the FP16 rate.
        assert_eq!(
            p100.peak_flop_rate(Precision::TensorCore),
            p100.peak_flop_rate(Precision::Half)
        );
    }

    #[test]
    fn empirical_ceilings_are_below_peak() {
        for model in [
            GpuModel::TeslaV100Sxm2_16,
            GpuModel::TeslaV100Pcie16,
            GpuModel::TeslaP100Pcie16,
        ] {
            let spec = model.spec();
            for p in Precision::ALL {
                assert!(
                    spec.empirical_flop_rate(p).as_flops_per_sec()
                        < spec.peak_flop_rate(p).as_flops_per_sec()
                );
            }
            assert!(
                spec.empirical_hbm_bandwidth().as_bytes_per_sec()
                    < spec.hbm_bandwidth().as_bytes_per_sec()
            );
        }
    }

    #[test]
    fn ridge_point_grows_with_precision_speed() {
        let spec = GpuModel::TeslaV100Sxm2_16.spec();
        let fp64 = spec.ridge_point(Precision::Double);
        let fp32 = spec.ridge_point(Precision::Single);
        let tc = spec.ridge_point(Precision::TensorCore);
        assert!(fp64 < fp32 && fp32 < tc);
        // V100 FP32 ridge is around 17 FLOP/byte empirically.
        assert!(fp32 > 10.0 && fp32 < 25.0, "fp32 ridge = {fp32}");
    }

    #[test]
    fn precision_element_bytes() {
        assert_eq!(Precision::Double.element_bytes(), 8);
        assert_eq!(Precision::Single.element_bytes(), 4);
        assert_eq!(Precision::Half.element_bytes(), 2);
        assert_eq!(Precision::TensorCore.element_bytes(), 2);
    }

    #[test]
    fn displays_are_informative() {
        let s = GpuModel::TeslaV100Sxm2_16.spec().to_string();
        assert!(s.contains("V100") && s.contains("80 SMs"));
        assert_eq!(Precision::TensorCore.to_string(), "FP16-TC");
    }
}
