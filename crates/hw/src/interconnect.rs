//! Interconnect link models: PCI Express 3.0, NVLink, and Intel UPI.
//!
//! Section V-D of the paper walks through the bandwidth hierarchy that drives
//! its topology results: PCIe 3.0 at ~0.985 GB/s per lane (15.8 GB/s for x16),
//! NVLink at 25 GB/s per lane (up to 150 GB/s on a 6-lane SXM2 V100), and UPI
//! at 20.8 GB/s between sockets. All bandwidths here are *unidirectional*,
//! matching the paper's convention.

use crate::units::{Bandwidth, Seconds};
use std::fmt;

/// PCIe 3.0 unidirectional bandwidth per lane (GB/s).
const PCIE3_PER_LANE_GB: f64 = 0.9846;
/// NVLink 2.0 unidirectional bandwidth per lane (GB/s).
const NVLINK_PER_LANE_GB: f64 = 25.0;
/// UPI unidirectional bandwidth per link (GB/s), per the paper's §V-C.
const UPI_PER_LINK_GB: f64 = 20.8;

/// Protocol efficiency: fraction of raw link bandwidth attainable by bulk
/// DMA transfers after header/flow-control overhead.
const PCIE_EFFICIENCY: f64 = 0.85;
const NVLINK_EFFICIENCY: f64 = 0.90;
const UPI_EFFICIENCY: f64 = 0.80;

/// One physical link between two topology nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Link {
    /// PCI Express 3.0 with the given lane count (x8, x16, ...).
    PcieGen3 {
        /// Number of lanes (1..=16 in practice).
        lanes: u32,
    },
    /// NVLink 2.0 with the given lane (brick) count between two endpoints.
    NvLink {
        /// Number of NVLink bricks bonded between the two endpoints.
        lanes: u32,
    },
    /// Intel Ultra Path Interconnect between CPU sockets.
    Upi {
        /// Number of UPI links between the sockets.
        links: u32,
    },
}

impl Link {
    /// A PCIe 3.0 x16 link, the common GPU attachment.
    pub const PCIE3_X16: Link = Link::PcieGen3 { lanes: 16 };
    /// A PCIe 3.0 x8 link.
    pub const PCIE3_X8: Link = Link::PcieGen3 { lanes: 8 };
    /// A single UPI link.
    pub const UPI_X1: Link = Link::Upi { links: 1 };

    /// Theoretical unidirectional bandwidth (datasheet numbers).
    pub fn theoretical_bandwidth(self) -> Bandwidth {
        match self {
            Link::PcieGen3 { lanes } => {
                Bandwidth::from_gb_per_sec(PCIE3_PER_LANE_GB * lanes as f64)
            }
            Link::NvLink { lanes } => Bandwidth::from_gb_per_sec(NVLINK_PER_LANE_GB * lanes as f64),
            Link::Upi { links } => Bandwidth::from_gb_per_sec(UPI_PER_LINK_GB * links as f64),
        }
    }

    /// Effective unidirectional bandwidth after protocol overhead; this is
    /// what the simulator charges transfers against.
    pub fn effective_bandwidth(self) -> Bandwidth {
        let eff = match self {
            Link::PcieGen3 { .. } => PCIE_EFFICIENCY,
            Link::NvLink { .. } => NVLINK_EFFICIENCY,
            Link::Upi { .. } => UPI_EFFICIENCY,
        };
        self.theoretical_bandwidth().scale(eff)
    }

    /// One-way message latency of the link (used as the α term in the
    /// α-β all-reduce cost model).
    pub fn latency(self) -> Seconds {
        match self {
            // PCIe round trips through the root complex are several µs.
            Link::PcieGen3 { .. } => Seconds::from_micros(5.0),
            // NVLink peer access is ~1.5 µs.
            Link::NvLink { .. } => Seconds::from_micros(1.5),
            // Socket-to-socket hops add ~0.5 µs on top of whatever bus
            // carried the data to the socket.
            Link::Upi { .. } => Seconds::from_micros(0.5),
        }
    }

    /// Number of lanes/links bonded in this link.
    pub fn width(self) -> u32 {
        match self {
            Link::PcieGen3 { lanes } => lanes,
            Link::NvLink { lanes } => lanes,
            Link::Upi { links } => links,
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Link::PcieGen3 { lanes } => write!(f, "PCIe 3.0 x{lanes}"),
            Link::NvLink { lanes } => write!(f, "NVLink x{lanes}"),
            Link::Upi { links } => write!(f, "UPI x{links}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_x16_matches_paper_figure() {
        let bw = Link::PCIE3_X16.theoretical_bandwidth();
        // Paper: "15.8 GBps for x16 lanes".
        assert!((bw.as_gb_per_sec() - 15.75).abs() < 0.1, "got {bw}");
    }

    #[test]
    fn nvlink_six_lanes_is_150_gbps() {
        let bw = Link::NvLink { lanes: 6 }.theoretical_bandwidth();
        assert!((bw.as_gb_per_sec() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn nvlink_two_lanes_is_50_gbps() {
        // C4140 pairs GPUs with 2 bonded bricks: 50 GB/s uni = 100 GB/s bidir,
        // the "100GB/s bandwidth between any two GPUs" the paper quotes.
        let bw = Link::NvLink { lanes: 2 }.theoretical_bandwidth();
        assert!((bw.as_gb_per_sec() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn upi_matches_paper_figure() {
        let bw = Link::UPI_X1.theoretical_bandwidth();
        assert!((bw.as_gb_per_sec() - 20.8).abs() < 1e-9);
    }

    #[test]
    fn effective_bandwidth_below_theoretical() {
        for link in [Link::PCIE3_X16, Link::NvLink { lanes: 6 }, Link::UPI_X1] {
            assert!(
                link.effective_bandwidth().as_bytes_per_sec()
                    < link.theoretical_bandwidth().as_bytes_per_sec()
            );
        }
    }

    #[test]
    fn bandwidth_hierarchy_nvlink_gt_upi_gt_pcie() {
        let nv = Link::NvLink { lanes: 2 }.effective_bandwidth();
        let upi = Link::UPI_X1.effective_bandwidth();
        let pcie = Link::PCIE3_X16.effective_bandwidth();
        assert!(nv.as_bytes_per_sec() > upi.as_bytes_per_sec());
        assert!(upi.as_bytes_per_sec() > pcie.as_bytes_per_sec());
    }

    #[test]
    fn latency_hierarchy() {
        assert!(
            Link::NvLink { lanes: 2 }.latency().as_secs() < Link::PCIE3_X16.latency().as_secs()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Link::PCIE3_X16.to_string(), "PCIe 3.0 x16");
        assert_eq!(Link::NvLink { lanes: 6 }.to_string(), "NVLink x6");
        assert_eq!(Link::UPI_X1.to_string(), "UPI x1");
    }
}
