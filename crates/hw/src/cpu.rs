//! Host CPU and DRAM models.
//!
//! Table III of the paper lists Intel Xeon Gold 6148 (2.40 GHz) and 6142
//! (2.60 GHz) processors with DDR4 DIMM configurations. The host matters to
//! the study through three quantities: core throughput available for input
//! preprocessing, DRAM capacity/bandwidth for dataset staging, and PCIe lane
//! budget for attaching GPUs.

use crate::units::{Bandwidth, Bytes};
use std::fmt;

/// Xeon SKUs used across the six systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuModel {
    /// Xeon Gold 6148: 20 cores @ 2.40 GHz base.
    XeonGold6148,
    /// Xeon Gold 6142: 16 cores @ 2.60 GHz base.
    XeonGold6142,
}

impl CpuModel {
    /// Full specification for this SKU.
    pub fn spec(self) -> CpuSpec {
        match self {
            CpuModel::XeonGold6148 => CpuSpec {
                model: self,
                name: "Intel Xeon Gold 6148",
                cores: 20,
                base_freq_ghz: 2.40,
                pcie_lanes: 48,
                memory_channels: 6,
                // DDR4-2666: 21.3 GB/s per channel.
                channel_bandwidth: Bandwidth::from_gb_per_sec(21.3),
            },
            CpuModel::XeonGold6142 => CpuSpec {
                model: self,
                name: "Intel Xeon Gold 6142",
                cores: 16,
                base_freq_ghz: 2.60,
                pcie_lanes: 48,
                memory_channels: 6,
                channel_bandwidth: Bandwidth::from_gb_per_sec(21.3),
            },
        }
    }
}

impl fmt::Display for CpuModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Specification of one CPU socket.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    model: CpuModel,
    name: &'static str,
    cores: u32,
    base_freq_ghz: f64,
    pcie_lanes: u32,
    memory_channels: u32,
    channel_bandwidth: Bandwidth,
}

impl CpuSpec {
    /// The SKU this spec describes.
    pub fn model(&self) -> CpuModel {
        self.model
    }

    /// Marketing name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Physical core count per socket.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Base frequency in GHz.
    pub fn base_freq_ghz(&self) -> f64 {
        self.base_freq_ghz
    }

    /// PCIe 3.0 lanes provided by this socket.
    pub fn pcie_lanes(&self) -> u32 {
        self.pcie_lanes
    }

    /// Number of DDR4 memory channels.
    pub fn memory_channels(&self) -> u32 {
        self.memory_channels
    }

    /// Aggregate local DRAM bandwidth of the socket (all channels populated).
    ///
    /// The paper quotes ≈128 GB/s for a hexa-channel Skylake-SP socket.
    pub fn local_memory_bandwidth(&self) -> Bandwidth {
        self.channel_bandwidth.scale(self.memory_channels as f64)
    }

    /// A scalar "preprocessing throughput" proxy: core count × frequency.
    /// Used by the input-pipeline model to scale per-sample host costs.
    pub fn preprocess_capacity(&self) -> f64 {
        self.cores as f64 * self.base_freq_ghz
    }
}

impl fmt::Display for CpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} cores @ {:.2} GHz, {} PCIe lanes)",
            self.name, self.cores, self.base_freq_ghz, self.pcie_lanes
        )
    }
}

/// A populated bank of DDR4 DIMMs attached to one or more sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimmConfig {
    /// Number of DIMMs installed in the chassis.
    pub count: u32,
    /// Capacity of each DIMM in GiB.
    pub size_gib: u32,
}

impl DimmConfig {
    /// Construct a DIMM population.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `size_gib` is zero.
    pub fn new(count: u32, size_gib: u32) -> Self {
        assert!(count > 0 && size_gib > 0, "DIMM config must be non-empty");
        DimmConfig { count, size_gib }
    }

    /// Total installed DRAM capacity.
    pub fn total_capacity(&self) -> Bytes {
        Bytes::from_gib(self.count as u64 * self.size_gib as u64)
    }
}

impl fmt::Display for DimmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x {} GB DDR4", self.count, self.size_gib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_6148_spec() {
        let spec = CpuModel::XeonGold6148.spec();
        assert_eq!(spec.cores(), 20);
        assert!((spec.base_freq_ghz() - 2.40).abs() < 1e-12);
        assert_eq!(spec.pcie_lanes(), 48);
    }

    #[test]
    fn xeon_6142_is_faster_but_smaller() {
        let a = CpuModel::XeonGold6148.spec();
        let b = CpuModel::XeonGold6142.spec();
        assert!(b.base_freq_ghz() > a.base_freq_ghz());
        assert!(b.cores() < a.cores());
    }

    #[test]
    fn hexa_channel_bandwidth_near_128_gbps() {
        let bw = CpuModel::XeonGold6148.spec().local_memory_bandwidth();
        assert!(
            (bw.as_gb_per_sec() - 127.8).abs() < 1.0,
            "got {bw}, paper quotes ~128 GB/s"
        );
    }

    #[test]
    fn dimm_capacity() {
        // C4140 (K): 12x 16 GB = 192 GB.
        assert_eq!(
            DimmConfig::new(12, 16).total_capacity(),
            Bytes::from_gib(192)
        );
        // DSS 8440: 12x 32 GB = 384 GB.
        assert_eq!(
            DimmConfig::new(12, 32).total_capacity(),
            Bytes::from_gib(384)
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dimm_config_rejected() {
        let _ = DimmConfig::new(0, 16);
    }

    #[test]
    fn preprocess_capacity_scales_with_cores_and_clock() {
        let a = CpuModel::XeonGold6148.spec().preprocess_capacity();
        assert!((a - 48.0).abs() < 1e-9);
    }
}
