//! NUMA memory-access modelling.
//!
//! §V-C: "in a case when a CPU needs a part of the dataset stored in the
//! other CPU's memory, the performance of data transfer will be
//! significantly reduced (i.e., 128GBps direct access for local DRAM v.s.
//! 20.8GBps neighbor DRAM access via UPI)." This module prices exactly
//! that: effective read bandwidth as a function of how much of a working
//! set is remote.

use crate::cpu::CpuSpec;
use crate::interconnect::Link;
use crate::units::{Bandwidth, Bytes, Seconds};

/// Where a page lives relative to the reading socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// In the reading socket's own DIMMs.
    Local,
    /// In the neighbour socket's DIMMs (crosses UPI).
    Remote,
}

/// Bandwidth one socket sees reading memory at a placement.
pub fn read_bandwidth(cpu: &CpuSpec, placement: Placement) -> Bandwidth {
    match placement {
        Placement::Local => cpu.local_memory_bandwidth(),
        // Remote reads are capped by the UPI link, not the DIMMs.
        Placement::Remote => Link::UPI_X1.theoretical_bandwidth(),
    }
}

/// Effective bandwidth reading a working set of which `remote_fraction`
/// lives on the neighbour socket (harmonic blend — time adds, not rates).
///
/// # Panics
///
/// Panics if `remote_fraction` is outside `[0, 1]`.
pub fn blended_bandwidth(cpu: &CpuSpec, remote_fraction: f64) -> Bandwidth {
    assert!(
        (0.0..=1.0).contains(&remote_fraction),
        "remote fraction must be in [0, 1]"
    );
    let local = read_bandwidth(cpu, Placement::Local).as_bytes_per_sec();
    let remote = read_bandwidth(cpu, Placement::Remote).as_bytes_per_sec();
    let inv = (1.0 - remote_fraction) / local + remote_fraction / remote;
    Bandwidth::new(1.0 / inv)
}

/// Time to sweep a working set once at a remote fraction.
pub fn sweep_time(cpu: &CpuSpec, working_set: Bytes, remote_fraction: f64) -> Seconds {
    working_set / blended_bandwidth(cpu, remote_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuModel;

    #[test]
    fn paper_quote_reproduced() {
        // "128GBps direct access ... v.s. 20.8GBps neighbor DRAM access".
        let cpu = CpuModel::XeonGold6148.spec();
        let local = read_bandwidth(&cpu, Placement::Local);
        let remote = read_bandwidth(&cpu, Placement::Remote);
        assert!((local.as_gb_per_sec() - 127.8).abs() < 1.0);
        assert!((remote.as_gb_per_sec() - 20.8).abs() < 1e-9);
        assert!(local.as_bytes_per_sec() / remote.as_bytes_per_sec() > 6.0);
    }

    #[test]
    fn blend_interpolates_harmonically() {
        let cpu = CpuModel::XeonGold6148.spec();
        let all_local = blended_bandwidth(&cpu, 0.0);
        let all_remote = blended_bandwidth(&cpu, 1.0);
        let half = blended_bandwidth(&cpu, 0.5);
        let close = |a: Bandwidth, b: Bandwidth| {
            (a.as_bytes_per_sec() - b.as_bytes_per_sec()).abs() < 1e-6 * b.as_bytes_per_sec()
        };
        assert!(close(all_local, read_bandwidth(&cpu, Placement::Local)));
        assert!(close(all_remote, read_bandwidth(&cpu, Placement::Remote)));
        // Harmonic: the slow half dominates; well below the arithmetic mean.
        let arithmetic = (all_local.as_bytes_per_sec() + all_remote.as_bytes_per_sec()) / 2.0;
        assert!(half.as_bytes_per_sec() < 0.6 * arithmetic);
    }

    #[test]
    fn sweep_time_grows_with_remote_fraction() {
        let cpu = CpuModel::XeonGold6148.spec();
        let ws = Bytes::from_gib(96);
        let t0 = sweep_time(&cpu, ws, 0.0);
        let t5 = sweep_time(&cpu, ws, 0.5);
        let t10 = sweep_time(&cpu, ws, 1.0);
        assert!(t0.as_secs() < t5.as_secs());
        assert!(t5.as_secs() < t10.as_secs());
        // Fully remote is >6x slower than fully local.
        assert!(t10.as_secs() > 6.0 * t0.as_secs());
    }

    #[test]
    #[should_panic(expected = "remote fraction")]
    fn bad_fraction_rejected() {
        let cpu = CpuModel::XeonGold6148.spec();
        let _ = blended_bandwidth(&cpu, 1.5);
    }
}
