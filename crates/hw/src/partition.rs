//! MIG-style device partitioning and co-location interference.
//!
//! Modern fleet economics are set by fractional GPUs: NVIDIA's
//! Multi-Instance GPU (MIG) carves one device into isolated slices, each
//! with a fixed share of SMs, HBM capacity/bandwidth, L2, and interconnect
//! lanes. *MIGPerf* shows that partitioning and training/inference
//! co-location reorder throughput-per-dollar rankings, so the suite prices
//! cells on a [`PartitionSpec`]: which slice layout the device is divided
//! into, and how many co-resident tenants share the silicon.
//!
//! Two effects are modeled, and they are deliberately separate:
//!
//! 1. **Slicing** — a `1/k` slice gets `floor(SMs/k)` multiprocessors (and
//!    compute ceilings scaled by the *granted* SM fraction, exactly as MIG
//!    grants whole GPCs), `1/k` of HBM capacity and bandwidth, and `1/k` of
//!    the collective-bandwidth share. Slicing is an allocation, not a
//!    penalty: a sole tenant on a slice sees no interference.
//! 2. **Co-location interference** — tenants sharing the device contend on
//!    the DRAM controllers and the (partially shared) L2. This is a
//!    multiplicative slowdown on the roofline terms: the memory-bandwidth
//!    ceiling and the compute ceiling each degrade per *additional*
//!    co-tenant. The slowdown is exactly 1.0 for a sole tenant, is always
//!    ≥ 1, and grows monotonically with the tenant count (property-tested).
//!
//! Invalid layouts are **typed errors, never a clamp**: a slice that would
//! round to zero SMs, a tenant count exceeding the slice count, or a
//! Pascal-class device (no MIG-style isolation hardware) all refuse
//! loudly. The canonical token grammar (`1of7`, `1of4x3`, `full`) is the
//! single spelling shared by sweep canonical bytes, CSV cells, the serve
//! `QueryV1` schema, and the `MLPERF_PARTITION` knob; `full` normalizes to
//! "no partition" so partition-free requests coalesce with old clients.

use crate::gpu::{GpuModel, GpuSpec};
use std::fmt;

/// Memory-bandwidth contention per additional co-tenant: each extra job
/// sharing the DRAM controllers costs ~8% of the slice's attainable
/// bandwidth (MIGPerf measures 5–12% for streaming-bound pairs).
const MEM_CONTENTION_PER_TENANT: f64 = 0.08;
/// L2 / instruction-issue contention per additional co-tenant on the
/// compute ceiling (~3%: MIG isolates SMs, so only the shared cache
/// hierarchy leaks).
const L2_CONTENTION_PER_TENANT: f64 = 0.03;

/// How a device is divided into MIG-style slices.
///
/// The layouts mirror the A100 MIG geometry scaled to the modeled
/// V100-class parts: halves (`3g.20gb`-analog), quarters (`2g.10gb`), and
/// the canonical seven-way `1g.5gb` layout. A whole device is *not* a
/// profile — "no partition" is the absence of a [`PartitionSpec`], so
/// partition-free cells spell byte-identically to the pre-partition suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartitionProfile {
    /// Two half-device slices.
    Half,
    /// Four quarter-device slices.
    Quarter,
    /// Seven one-seventh slices — the A100 7-way layout.
    Seventh,
}

impl PartitionProfile {
    /// All profiles, coarsest first.
    pub const ALL: [PartitionProfile; 3] = [
        PartitionProfile::Half,
        PartitionProfile::Quarter,
        PartitionProfile::Seventh,
    ];

    /// Number of slices this layout divides the device into.
    pub fn slice_count(self) -> u32 {
        match self {
            PartitionProfile::Half => 2,
            PartitionProfile::Quarter => 4,
            PartitionProfile::Seventh => 7,
        }
    }

    /// The layout with `k` slices, if one exists (`k = 1` is "no
    /// partition" and has no profile).
    pub fn with_slice_count(k: u32) -> Option<PartitionProfile> {
        PartitionProfile::ALL
            .into_iter()
            .find(|p| p.slice_count() == k)
    }
}

/// Why a partition layout was refused. Validity failures are typed and
/// final — nothing in this module clamps an invalid request into a valid
/// one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The device has no MIG-class isolation hardware (Pascal).
    UnsupportedDevice {
        /// The refusing SKU.
        model: GpuModel,
    },
    /// The slice layout would grant a slice zero SMs on this device.
    SliceTooSmall {
        /// The device being sliced.
        model: GpuModel,
        /// Slices requested.
        slices: u32,
    },
    /// A tenant count of zero is meaningless (the job itself is a tenant).
    ZeroTenants,
    /// More co-resident tenants than the layout has slices.
    TooManyTenants {
        /// Tenants requested (including the job itself).
        tenants: u32,
        /// Slices the layout provides.
        slices: u32,
    },
    /// The token does not parse under the `1of{2|4|7}[x{t}]` / `full`
    /// grammar.
    BadToken {
        /// The offending spelling.
        token: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::UnsupportedDevice { model } => {
                write!(f, "{} has no MIG-style partitioning", model.spec().name())
            }
            PartitionError::SliceTooSmall { model, slices } => write!(
                f,
                "a 1/{slices} slice of {} would have zero SMs",
                model.spec().name()
            ),
            PartitionError::ZeroTenants => f.write_str("tenant count must be at least 1"),
            PartitionError::TooManyTenants { tenants, slices } => {
                write!(f, "{tenants} tenants exceed the {slices}-slice layout")
            }
            PartitionError::BadToken { token } => write!(
                f,
                "bad partition token {token:?} (expected full, 1of2, 1of4 or 1of7, \
                 optionally x<tenants>)"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// One slice of a partitioned device, plus its co-location context: the
/// layout the device is divided into and how many tenants (including this
/// job) are resident on the parent device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionSpec {
    profile: PartitionProfile,
    tenants: u32,
}

impl PartitionSpec {
    /// A slice of `profile`'s layout with `tenants` co-resident jobs on
    /// the parent device (including this one).
    ///
    /// # Errors
    ///
    /// [`PartitionError::ZeroTenants`] and
    /// [`PartitionError::TooManyTenants`] — the tenant count must be in
    /// `1..=slice_count`.
    pub fn new(profile: PartitionProfile, tenants: u32) -> Result<PartitionSpec, PartitionError> {
        if tenants == 0 {
            return Err(PartitionError::ZeroTenants);
        }
        let slices = profile.slice_count();
        if tenants > slices {
            return Err(PartitionError::TooManyTenants { tenants, slices });
        }
        Ok(PartitionSpec { profile, tenants })
    }

    /// A sole tenant on one slice of `profile`'s layout.
    pub fn solo(profile: PartitionProfile) -> PartitionSpec {
        PartitionSpec {
            profile,
            tenants: 1,
        }
    }

    /// The device fully packed: one tenant per slice of `profile`'s
    /// layout (the k-way partitioning study's operating point).
    pub fn packed(profile: PartitionProfile) -> PartitionSpec {
        PartitionSpec {
            profile,
            tenants: profile.slice_count(),
        }
    }

    /// The slice layout.
    pub fn profile(&self) -> PartitionProfile {
        self.profile
    }

    /// Co-resident tenants on the parent device, including this job.
    pub fn tenants(&self) -> u32 {
        self.tenants
    }

    /// Parse the canonical token. `"full"` (and the explicit-default
    /// `x1` suffix) normalizes: `full` means "no partition" and returns
    /// `None`, so old partition-free spellings and new explicit ones
    /// coalesce onto the same canonical bytes.
    ///
    /// # Errors
    ///
    /// [`PartitionError::BadToken`] for anything outside the grammar, and
    /// the [`PartitionSpec::new`] validity errors for in-grammar tokens
    /// naming an invalid layout (never a clamp).
    pub fn parse(token: &str) -> Result<Option<PartitionSpec>, PartitionError> {
        if token == "full" {
            return Ok(None);
        }
        let bad = || PartitionError::BadToken {
            token: token.to_string(),
        };
        let rest = token.strip_prefix("1of").ok_or_else(bad)?;
        let (k_str, tenants) = match rest.split_once('x') {
            None => (rest, 1),
            Some((k_str, t_str)) => {
                // Reject non-canonical digits (leading zeros, signs,
                // whitespace) so every accepted token has exactly one
                // spelling.
                if t_str.is_empty() || !t_str.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(bad());
                }
                if t_str.len() > 1 && t_str.starts_with('0') {
                    return Err(bad());
                }
                (k_str, t_str.parse::<u32>().map_err(|_| bad())?)
            }
        };
        let profile = match k_str {
            "2" => PartitionProfile::Half,
            "4" => PartitionProfile::Quarter,
            "7" => PartitionProfile::Seventh,
            _ => return Err(bad()),
        };
        // Tenant-count validity is a typed layout error, not a token
        // error: `1of2x9` is grammatical but names an impossible layout.
        PartitionSpec::new(profile, tenants).map(Some)
    }

    /// Multiplicative slowdown on the memory-bandwidth roofline term from
    /// co-tenant DRAM contention. Exactly 1.0 for a sole tenant.
    pub fn mem_slowdown(&self) -> f64 {
        1.0 + MEM_CONTENTION_PER_TENANT * f64::from(self.tenants - 1)
    }

    /// Multiplicative slowdown on the compute roofline term from shared-L2
    /// contention. Exactly 1.0 for a sole tenant.
    pub fn l2_slowdown(&self) -> f64 {
        1.0 + L2_CONTENTION_PER_TENANT * f64::from(self.tenants - 1)
    }

    /// The headline co-location interference factor: the combined
    /// multiplicative penalty across both contended roofline terms.
    /// Always ≥ 1, exactly 1.0 for a sole tenant, and strictly monotone
    /// in the tenant count.
    pub fn interference_slowdown(&self) -> f64 {
        self.mem_slowdown() * self.l2_slowdown()
    }

    /// Slowdown on collective (all-reduce) bandwidth: a `1/k` slice is
    /// granted a `1/k` share of the device's interconnect lanes, so wire
    /// time stretches by the slice count. Allocation, not contention —
    /// MIG lane shares are isolated, so the tenant count does not appear.
    pub fn comm_slowdown(&self) -> f64 {
        f64::from(self.profile.slice_count())
    }

    /// The spec sheet of one slice of `parent`, with co-location
    /// interference folded into the attainable ceilings:
    ///
    /// * SMs: `floor(parent / k)` (MIG grants whole compute units), with
    ///   compute ceilings scaled by the *granted* fraction and divided by
    ///   the L2 contention factor;
    /// * HBM capacity and bandwidth: `1/k`, bandwidth further divided by
    ///   the DRAM contention factor;
    /// * NVLink lanes: `floor(parent / k)` (the collective model uses
    ///   [`PartitionSpec::comm_slowdown`], which keeps the exact `1/k`
    ///   share).
    ///
    /// # Errors
    ///
    /// [`PartitionError::UnsupportedDevice`] on Pascal-class parts and
    /// [`PartitionError::SliceTooSmall`] when the layout would grant zero
    /// SMs — both typed refusals, never a clamp.
    pub fn sliced_spec(&self, parent: &GpuSpec) -> Result<GpuSpec, PartitionError> {
        if !parent.model().has_tensor_cores() {
            return Err(PartitionError::UnsupportedDevice {
                model: parent.model(),
            });
        }
        let k = self.profile.slice_count();
        let sm_count = parent.sm_count() / k;
        if sm_count == 0 {
            return Err(PartitionError::SliceTooSmall {
                model: parent.model(),
                slices: k,
            });
        }
        let granted = f64::from(sm_count) / f64::from(parent.sm_count());
        let compute_scale = granted / self.l2_slowdown();
        let bw_scale = (1.0 / f64::from(k)) / self.mem_slowdown();
        Ok(parent.slice(
            sm_count,
            compute_scale,
            parent.hbm_capacity().scale(1.0 / f64::from(k)),
            bw_scale,
            parent.nvlink_lanes() / k,
        ))
    }
}

impl fmt::Display for PartitionSpec {
    /// The canonical token: `1of{k}` for a sole tenant, `1of{k}x{t}`
    /// otherwise. Round-trips through [`PartitionSpec::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "1of{}", self.profile.slice_count())?;
        if self.tenants > 1 {
            write!(f, "x{}", self.tenants)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::Precision;

    #[test]
    fn tokens_round_trip_and_full_normalizes() {
        for token in ["1of2", "1of4x3", "1of7", "1of7x7"] {
            let spec = PartitionSpec::parse(token).unwrap().expect("partitioned");
            assert_eq!(spec.to_string(), token);
        }
        assert_eq!(PartitionSpec::parse("full").unwrap(), None);
        // Explicit sole tenant normalizes to the bare spelling.
        let spec = PartitionSpec::parse("1of4x1").unwrap().unwrap();
        assert_eq!(spec.to_string(), "1of4");
    }

    #[test]
    fn bad_tokens_are_typed_never_clamped() {
        for token in [
            "", "half", "1of3", "1of8", "2of7", "1of7x", "1of7x0x", "1of4x03", "1of4x+2", "FULL",
            " 1of2", "1of2 ",
        ] {
            assert!(
                matches!(
                    PartitionSpec::parse(token),
                    Err(PartitionError::BadToken { .. })
                ),
                "token {token:?} should be a BadToken"
            );
        }
        assert_eq!(
            PartitionSpec::parse("1of4x9"),
            Err(PartitionError::TooManyTenants {
                tenants: 9,
                slices: 4
            })
        );
        assert_eq!(
            PartitionSpec::parse("1of4x0"),
            Err(PartitionError::ZeroTenants)
        );
    }

    #[test]
    fn slicing_divides_resources() {
        let parent = GpuModel::TeslaV100Sxm2_16.spec();
        let spec = PartitionSpec::solo(PartitionProfile::Seventh);
        let slice = spec.sliced_spec(&parent).unwrap();
        assert_eq!(slice.sm_count(), 80 / 7);
        assert_eq!(slice.hbm_capacity(), parent.hbm_capacity().scale(1.0 / 7.0));
        assert!(
            (slice.hbm_bandwidth().as_bytes_per_sec()
                - parent.hbm_bandwidth().as_bytes_per_sec() / 7.0)
                .abs()
                < 1.0
        );
        assert_eq!(slice.nvlink_lanes(), 0); // floor(6 / 7)
        // Compute scales by the granted SM fraction, not the naive 1/7.
        let granted = (80 / 7) as f64 / 80.0;
        let want = parent.peak_flop_rate(Precision::TensorCore).as_tflops() * granted;
        let got = slice.peak_flop_rate(Precision::TensorCore).as_tflops();
        assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
    }

    #[test]
    fn sole_tenant_has_no_interference() {
        for profile in PartitionProfile::ALL {
            let spec = PartitionSpec::solo(profile);
            assert_eq!(spec.interference_slowdown(), 1.0);
            assert_eq!(spec.mem_slowdown(), 1.0);
            assert_eq!(spec.l2_slowdown(), 1.0);
        }
    }

    #[test]
    fn interference_monotone_in_tenants() {
        let mut last = 0.0;
        for t in 1..=7 {
            let spec = PartitionSpec::new(PartitionProfile::Seventh, t).unwrap();
            let s = spec.interference_slowdown();
            assert!(s >= 1.0 && s > last);
            last = s;
        }
    }

    #[test]
    fn pascal_refuses_partitioning() {
        let parent = GpuModel::TeslaP100Pcie16.spec();
        let spec = PartitionSpec::solo(PartitionProfile::Half);
        assert_eq!(
            spec.sliced_spec(&parent),
            Err(PartitionError::UnsupportedDevice {
                model: GpuModel::TeslaP100Pcie16
            })
        );
    }

    #[test]
    fn packed_fills_every_slice() {
        for profile in PartitionProfile::ALL {
            let spec = PartitionSpec::packed(profile);
            assert_eq!(spec.tenants(), profile.slice_count());
        }
        assert_eq!(PartitionProfile::with_slice_count(7), Some(PartitionProfile::Seventh));
        assert_eq!(PartitionProfile::with_slice_count(3), None);
    }

    #[test]
    fn comm_slowdown_is_the_slice_count() {
        assert_eq!(PartitionSpec::solo(PartitionProfile::Quarter).comm_slowdown(), 4.0);
        assert_eq!(PartitionSpec::packed(PartitionProfile::Half).comm_slowdown(), 2.0);
    }

    #[test]
    fn errors_display_informatively() {
        let e = PartitionSpec::parse("1of9").unwrap_err();
        assert!(e.to_string().contains("1of9"));
        let e = PartitionSpec::parse("1of2x3").unwrap_err();
        assert!(e.to_string().contains("2-slice"));
    }
}
