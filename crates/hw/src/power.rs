//! Power models: board/package TDPs and utilization-scaled draw.
//!
//! An extension beyond the paper toward DAWNBench's second metric
//! (cost-to-train): device and host power ratings let a simulated run be
//! priced in joules and dollars. Draw scales affinely with utilization
//! between an idle floor and the rated TDP, the standard first-order model.

use crate::cpu::CpuModel;
use crate::gpu::GpuModel;

/// Fraction of TDP a device draws while idle but powered.
const IDLE_FRACTION: f64 = 0.15;

/// Rated board power of a GPU SKU, watts.
pub fn gpu_tdp_watts(model: GpuModel) -> f64 {
    match model {
        GpuModel::TeslaV100Sxm2_16 | GpuModel::TeslaV100Sxm2_32 => 300.0,
        GpuModel::TeslaV100Pcie16 | GpuModel::TeslaV100Pcie32 => 250.0,
        GpuModel::TeslaP100Pcie16 => 250.0,
    }
}

/// Rated package power of a CPU SKU, watts.
pub fn cpu_tdp_watts(model: CpuModel) -> f64 {
    match model {
        CpuModel::XeonGold6148 => 150.0,
        CpuModel::XeonGold6142 => 150.0,
    }
}

/// Average draw of a device at a utilization in `[0, 1]`: the idle floor
/// plus the utilization-proportional remainder.
///
/// # Panics
///
/// Panics if `utilization` is outside `[0, 1]` or `tdp_watts` is not
/// finite and positive.
pub fn draw_watts(tdp_watts: f64, utilization: f64) -> f64 {
    assert!(
        tdp_watts.is_finite() && tdp_watts > 0.0,
        "TDP must be finite and positive"
    );
    assert!(
        (0.0..=1.0).contains(&utilization),
        "utilization must be in [0, 1], got {utilization}"
    );
    tdp_watts * (IDLE_FRACTION + (1.0 - IDLE_FRACTION) * utilization)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sxm2_is_hotter_than_pcie() {
        assert!(
            gpu_tdp_watts(GpuModel::TeslaV100Sxm2_16) > gpu_tdp_watts(GpuModel::TeslaV100Pcie16)
        );
    }

    #[test]
    fn draw_is_affine_in_utilization() {
        let idle = draw_watts(300.0, 0.0);
        let full = draw_watts(300.0, 1.0);
        let half = draw_watts(300.0, 0.5);
        assert!((idle - 45.0).abs() < 1e-9);
        assert!((full - 300.0).abs() < 1e-9);
        assert!((half - (idle + full) / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "utilization must be in")]
    fn utilization_out_of_range_rejected() {
        let _ = draw_watts(300.0, 1.5);
    }
}
