//! The experimental platforms of Table III, as prebuilt topologies.
//!
//! Six Dell PowerEdge servers were used in the study, differing in CPU count,
//! GPU form factor, and — decisively — GPU interconnect topology:
//!
//! | System    | GPUs            | GPU interconnect                          |
//! |-----------|-----------------|-------------------------------------------|
//! | T640      | 4× V100 PCIe 32G| CPU PCIe ports, pairs split across UPI     |
//! | C4140 (B) | 4× V100 PCIe 16G| 96-lane PCIe switch (single root complex)  |
//! | C4140 (K) | 4× V100 SXM2 16G| NVLink mesh + PCIe switch to host          |
//! | C4140 (M) | 4× V100 SXM2 16G| NVLink mesh + direct CPU PCIe              |
//! | R940 XA   | 4× V100 PCIe 32G| one GPU per CPU socket, UPI between        |
//! | DSS 8440  | 8× V100 PCIe 16G| two PCIe switch domains + UPI              |
//!
//! plus the MLPerf v0.5 reference machine (one Tesla P100).

use crate::cpu::{CpuModel, DimmConfig};
use crate::gpu::GpuModel;
use crate::interconnect::Link;
use crate::topology::Topology;
use crate::units::Bytes;
use std::fmt;

/// Identifier for each experimental platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemId {
    /// Dell PowerEdge T640 (4× V100 PCIe, PCIe & UPI).
    T640,
    /// Dell PowerEdge C4140 config B (4× V100 PCIe behind one PCIe switch).
    C4140B,
    /// Dell PowerEdge C4140 config K (4× V100 SXM2, NVLink + PCIe switch).
    C4140K,
    /// Dell PowerEdge C4140 config M (4× V100 SXM2, NVLink + direct PCIe).
    C4140M,
    /// Dell PowerEdge R940 XA (4 CPUs, one V100 per socket).
    R940Xa,
    /// Dell DSS 8440 (8× V100 PCIe, two switch domains).
    Dss8440,
    /// MLPerf v0.5 reference machine (1× Tesla P100).
    ReferenceP100,
    /// NVIDIA DGX-1V (8× V100 SXM2 in a hybrid cube-mesh) — an extension
    /// platform beyond Table III; NVIDIA's v0.5 submissions ran on it.
    Dgx1V,
}

impl SystemId {
    /// All platforms, in Table III column order (reference machine last).
    pub const ALL: [SystemId; 7] = [
        SystemId::T640,
        SystemId::C4140B,
        SystemId::C4140K,
        SystemId::C4140M,
        SystemId::R940Xa,
        SystemId::Dss8440,
        SystemId::ReferenceP100,
    ];

    /// The five 4-GPU platforms compared in Fig. 5, in the paper's order.
    pub const FOUR_GPU_PLATFORMS: [SystemId; 5] = [
        SystemId::C4140M,
        SystemId::C4140K,
        SystemId::C4140B,
        SystemId::R940Xa,
        SystemId::T640,
    ];

    /// Short display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            SystemId::T640 => "T640",
            SystemId::C4140B => "C4140 (B)",
            SystemId::C4140K => "C4140 (K)",
            SystemId::C4140M => "C4140 (M)",
            SystemId::R940Xa => "R940 XA",
            SystemId::Dss8440 => "DSS 8440",
            SystemId::ReferenceP100 => "MLPerf reference (P100)",
            SystemId::Dgx1V => "DGX-1V (extension)",
        }
    }

    /// The whitespace-free wire token for this platform: [`SystemId::name`]
    /// with every space replaced by an underscore (`"DSS_8440"`,
    /// `"C4140_(K)"`). This is the single system vocabulary of the
    /// `repro serve` wire schema.
    pub fn token(self) -> String {
        self.name().replace(' ', "_")
    }

    /// The inverse of [`SystemId::token`]: the platform a wire token
    /// names, if any. Covers every variant, including the extension
    /// platforms outside [`SystemId::ALL`].
    pub fn from_token(s: &str) -> Option<SystemId> {
        const EVERY: [SystemId; 8] = [
            SystemId::T640,
            SystemId::C4140B,
            SystemId::C4140K,
            SystemId::C4140M,
            SystemId::R940Xa,
            SystemId::Dss8440,
            SystemId::ReferenceP100,
            SystemId::Dgx1V,
        ];
        EVERY.into_iter().find(|id| id.token() == s)
    }

    /// Build the full specification (topology included) for this platform.
    pub fn spec(self) -> SystemSpec {
        build_system(self)
    }
}

impl fmt::Display for SystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete platform description: sockets, memory, GPUs, and topology.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    id: SystemId,
    cpu_model: CpuModel,
    dimms: DimmConfig,
    gpu_model: GpuModel,
    interconnect_label: &'static str,
    topology: Topology,
}

impl SystemSpec {
    /// Which platform this is.
    pub fn id(&self) -> SystemId {
        self.id
    }

    /// CPU SKU (all sockets identical).
    pub fn cpu_model(&self) -> CpuModel {
        self.cpu_model
    }

    /// Installed DIMM population.
    pub fn dimms(&self) -> DimmConfig {
        self.dimms
    }

    /// Total system DRAM capacity.
    pub fn dram_capacity(&self) -> Bytes {
        self.dimms.total_capacity()
    }

    /// GPU SKU (all GPUs identical).
    pub fn gpu_model(&self) -> GpuModel {
        self.gpu_model
    }

    /// Number of GPUs installed.
    pub fn gpu_count(&self) -> usize {
        self.topology.gpu_count()
    }

    /// Number of CPU sockets.
    pub fn cpu_count(&self) -> usize {
        self.topology.cpu_count()
    }

    /// The inter-connect description string of Table III.
    pub fn interconnect_label(&self) -> &'static str {
        self.interconnect_label
    }

    /// The interconnect topology graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

impl fmt::Display for SystemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x {}, {}x {}, {} ({})",
            self.id.name(),
            self.cpu_count(),
            self.cpu_model.spec().name(),
            self.gpu_count(),
            self.gpu_model.spec().name(),
            self.dimms,
            self.interconnect_label,
        )
    }
}

/// NVLink bonding between each GPU pair in the C4140 mesh: 2 bricks per pair
/// gives the "100 GB/s [bidirectional] between any two GPUs" of §V-E.
const C4140_NVLINK_LANES_PER_PAIR: u32 = 2;

fn build_system(id: SystemId) -> SystemSpec {
    match id {
        SystemId::T640 => {
            // Two sockets, two PCIe GPUs hanging off each socket's root ports.
            let mut t = Topology::new("T640");
            let c0 = t.add_cpu(CpuModel::XeonGold6148);
            let c1 = t.add_cpu(CpuModel::XeonGold6148);
            t.connect(c0, c1, Link::UPI_X1);
            for cpu in [c0, c0, c1, c1] {
                let g = t.add_gpu(GpuModel::TeslaV100Pcie32);
                t.connect(cpu, g, Link::PCIE3_X16);
            }
            SystemSpec {
                id,
                cpu_model: CpuModel::XeonGold6148,
                dimms: DimmConfig::new(12, 16),
                gpu_model: GpuModel::TeslaV100Pcie32,
                interconnect_label: "PCIe & UPI",
                topology: t,
            }
        }
        SystemId::C4140B => {
            // One 96-lane PCIe switch hosts all four GPUs: single root
            // complex, GPUDirect P2P over the switch.
            let mut t = Topology::new("C4140 (B)");
            let c0 = t.add_cpu(CpuModel::XeonGold6148);
            let c1 = t.add_cpu(CpuModel::XeonGold6148);
            t.connect(c0, c1, Link::UPI_X1);
            let sw = t.add_switch();
            t.connect(c0, sw, Link::PCIE3_X16);
            for _ in 0..4 {
                let g = t.add_gpu(GpuModel::TeslaV100Pcie16);
                t.connect(sw, g, Link::PCIE3_X16);
            }
            SystemSpec {
                id,
                cpu_model: CpuModel::XeonGold6148,
                dimms: DimmConfig::new(12, 16),
                gpu_model: GpuModel::TeslaV100Pcie16,
                interconnect_label: "PCIe (switch)",
                topology: t,
            }
        }
        SystemId::C4140K => {
            // NVLink mesh between SXM2 GPUs; host attach aggregated through
            // a PCIe switch.
            let mut t = Topology::new("C4140 (K)");
            let c0 = t.add_cpu(CpuModel::XeonGold6148);
            let c1 = t.add_cpu(CpuModel::XeonGold6148);
            t.connect(c0, c1, Link::UPI_X1);
            let sw = t.add_switch();
            t.connect(c0, sw, Link::PCIE3_X16);
            let gpus: Vec<_> = (0..4)
                .map(|_| t.add_gpu(GpuModel::TeslaV100Sxm2_16))
                .collect();
            for &g in &gpus {
                t.connect(sw, g, Link::PCIE3_X16);
            }
            nvlink_mesh(&mut t, &gpus);
            SystemSpec {
                id,
                cpu_model: CpuModel::XeonGold6148,
                dimms: DimmConfig::new(12, 16),
                gpu_model: GpuModel::TeslaV100Sxm2_16,
                interconnect_label: "NVLink",
                topology: t,
            }
        }
        SystemId::C4140M => {
            // NVLink mesh; each GPU also has a dedicated x16 to a socket.
            let mut t = Topology::new("C4140 (M)");
            let c0 = t.add_cpu(CpuModel::XeonGold6148);
            let c1 = t.add_cpu(CpuModel::XeonGold6148);
            t.connect(c0, c1, Link::UPI_X1);
            let mut gpus = Vec::new();
            for (i, cpu) in [c0, c0, c1, c1].into_iter().enumerate() {
                let g = t.add_gpu(GpuModel::TeslaV100Sxm2_16);
                t.connect(cpu, g, Link::PCIE3_X16);
                gpus.push(g);
                let _ = i;
            }
            nvlink_mesh(&mut t, &gpus);
            SystemSpec {
                id,
                cpu_model: CpuModel::XeonGold6148,
                dimms: DimmConfig::new(24, 16),
                gpu_model: GpuModel::TeslaV100Sxm2_16,
                interconnect_label: "NVLink",
                topology: t,
            }
        }
        SystemId::R940Xa => {
            // Four sockets in a UPI ring, one GPU per socket.
            let mut t = Topology::new("R940 XA");
            let cpus: Vec<_> = (0..4).map(|_| t.add_cpu(CpuModel::XeonGold6148)).collect();
            for i in 0..4 {
                t.connect(cpus[i], cpus[(i + 1) % 4], Link::UPI_X1);
            }
            for &c in &cpus {
                let g = t.add_gpu(GpuModel::TeslaV100Pcie32);
                t.connect(c, g, Link::PCIE3_X16);
            }
            SystemSpec {
                id,
                cpu_model: CpuModel::XeonGold6148,
                dimms: DimmConfig::new(24, 16),
                gpu_model: GpuModel::TeslaV100Pcie32,
                interconnect_label: "UPI",
                topology: t,
            }
        }
        SystemId::Dss8440 => {
            // Two sockets; each hosts a PCIe switch domain with four GPUs.
            let mut t = Topology::new("DSS 8440");
            let c0 = t.add_cpu(CpuModel::XeonGold6142);
            let c1 = t.add_cpu(CpuModel::XeonGold6142);
            t.connect(c0, c1, Link::UPI_X1);
            for cpu in [c0, c1] {
                let sw = t.add_switch();
                t.connect(cpu, sw, Link::PCIE3_X16);
                for _ in 0..4 {
                    let g = t.add_gpu(GpuModel::TeslaV100Pcie16);
                    t.connect(sw, g, Link::PCIE3_X16);
                }
            }
            SystemSpec {
                id,
                cpu_model: CpuModel::XeonGold6142,
                dimms: DimmConfig::new(12, 32),
                gpu_model: GpuModel::TeslaV100Pcie16,
                interconnect_label: "PCIe & UPI",
                topology: t,
            }
        }
        SystemId::Dgx1V => {
            // Hybrid cube mesh: two quads bridged GPU-to-GPU; each GPU
            // spends its six NVLink bricks as one doubled intra-quad pair
            // plus four single links. Pairs without a direct link (e.g.
            // 0-5) relay over a one-hop NVLink neighbour.
            let mut t = Topology::new("DGX-1V");
            let c0 = t.add_cpu(CpuModel::XeonGold6148);
            let c1 = t.add_cpu(CpuModel::XeonGold6148);
            t.connect(c0, c1, Link::UPI_X1);
            let mut gpus = Vec::new();
            for cpu in [c0, c1] {
                for _ in 0..2 {
                    let sw = t.add_switch();
                    t.connect(cpu, sw, Link::PCIE3_X16);
                    for _ in 0..2 {
                        let g = t.add_gpu(GpuModel::TeslaV100Sxm2_16);
                        t.connect(sw, g, Link::PCIE3_X16);
                        gpus.push(g);
                    }
                }
            }
            const DOUBLE: [(usize, usize); 4] = [(0, 1), (2, 3), (4, 5), (6, 7)];
            const SINGLE: [(usize, usize); 12] = [
                (0, 2),
                (1, 3),
                (0, 3),
                (1, 2), // quad A diagonals
                (4, 6),
                (5, 7),
                (4, 7),
                (5, 6), // quad B diagonals
                (0, 4),
                (1, 5),
                (2, 6),
                (3, 7), // cube edges
            ];
            for (a, b) in DOUBLE {
                t.connect(gpus[a], gpus[b], Link::NvLink { lanes: 2 });
            }
            for (a, b) in SINGLE {
                t.connect(gpus[a], gpus[b], Link::NvLink { lanes: 1 });
            }
            SystemSpec {
                id,
                cpu_model: CpuModel::XeonGold6148,
                dimms: DimmConfig::new(16, 32),
                gpu_model: GpuModel::TeslaV100Sxm2_16,
                interconnect_label: "NVLink cube mesh",
                topology: t,
            }
        }
        SystemId::ReferenceP100 => {
            let mut t = Topology::new("MLPerf reference (P100)");
            let c0 = t.add_cpu(CpuModel::XeonGold6148);
            let g = t.add_gpu(GpuModel::TeslaP100Pcie16);
            t.connect(c0, g, Link::PCIE3_X16);
            SystemSpec {
                id,
                cpu_model: CpuModel::XeonGold6148,
                dimms: DimmConfig::new(12, 16),
                gpu_model: GpuModel::TeslaP100Pcie16,
                interconnect_label: "PCIe",
                topology: t,
            }
        }
    }
}

/// Fully connect a set of GPUs with NVLink (the C4140 SXM2 mesh).
fn nvlink_mesh(t: &mut Topology, gpus: &[crate::topology::NodeId]) {
    for (i, &a) in gpus.iter().enumerate() {
        for &b in &gpus[i + 1..] {
            t.connect(
                a,
                b,
                Link::NvLink {
                    lanes: C4140_NVLINK_LANES_PER_PAIR,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::P2pClass;

    #[test]
    fn all_platforms_build() {
        for id in SystemId::ALL {
            let spec = id.spec();
            assert_eq!(spec.id(), id);
            assert!(spec.gpu_count() >= 1);
            assert!(spec.cpu_count() >= 1);
        }
    }

    #[test]
    fn gpu_counts_match_table_iii() {
        assert_eq!(SystemId::T640.spec().gpu_count(), 4);
        assert_eq!(SystemId::C4140B.spec().gpu_count(), 4);
        assert_eq!(SystemId::C4140K.spec().gpu_count(), 4);
        assert_eq!(SystemId::C4140M.spec().gpu_count(), 4);
        assert_eq!(SystemId::R940Xa.spec().gpu_count(), 4);
        assert_eq!(SystemId::Dss8440.spec().gpu_count(), 8);
        assert_eq!(SystemId::ReferenceP100.spec().gpu_count(), 1);
    }

    #[test]
    fn dram_capacities_match_table_iii() {
        assert_eq!(SystemId::T640.spec().dram_capacity(), Bytes::from_gib(192));
        assert_eq!(
            SystemId::C4140M.spec().dram_capacity(),
            Bytes::from_gib(384)
        );
        assert_eq!(
            SystemId::Dss8440.spec().dram_capacity(),
            Bytes::from_gib(384)
        );
    }

    #[test]
    fn dss8440_uses_6142() {
        assert_eq!(SystemId::Dss8440.spec().cpu_model(), CpuModel::XeonGold6142);
        assert_eq!(SystemId::T640.spec().cpu_model(), CpuModel::XeonGold6148);
    }

    #[test]
    fn nvlink_systems_have_nvlink_peer_paths() {
        for id in [SystemId::C4140K, SystemId::C4140M] {
            let spec = id.spec();
            for a in 0..4u32 {
                for b in (a + 1)..4 {
                    let p = spec.topology().gpu_peer_path(a, b).unwrap();
                    assert_eq!(p.class, P2pClass::NvLinkDirect, "{id} {a}-{b}");
                }
            }
        }
    }

    #[test]
    fn c4140b_is_switch_p2p() {
        let spec = SystemId::C4140B.spec();
        let p = spec.topology().gpu_peer_path(0, 3).unwrap();
        assert_eq!(p.class, P2pClass::PcieSwitchP2p);
    }

    #[test]
    fn t640_cross_socket_pairs_cross_upi() {
        let spec = SystemId::T640.spec();
        let same = spec.topology().gpu_peer_path(0, 1).unwrap();
        let cross = spec.topology().gpu_peer_path(0, 2).unwrap();
        assert_eq!(same.class, P2pClass::ThroughCpu);
        assert_eq!(cross.class, P2pClass::ThroughUpi);
    }

    #[test]
    fn r940xa_every_pair_crosses_upi() {
        let spec = SystemId::R940Xa.spec();
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                let p = spec.topology().gpu_peer_path(a, b).unwrap();
                assert_eq!(p.class, P2pClass::ThroughUpi, "{a}-{b}");
            }
        }
    }

    #[test]
    fn dss8440_same_switch_p2p_cross_switch_upi() {
        let spec = SystemId::Dss8440.spec();
        let same = spec.topology().gpu_peer_path(0, 3).unwrap();
        let cross = spec.topology().gpu_peer_path(0, 4).unwrap();
        assert_eq!(same.class, P2pClass::PcieSwitchP2p);
        assert_eq!(cross.class, P2pClass::ThroughUpi);
    }

    #[test]
    fn four_gpu_platform_list_excludes_dss_and_reference() {
        for id in SystemId::FOUR_GPU_PLATFORMS {
            assert_eq!(id.spec().gpu_count(), 4);
        }
    }

    #[test]
    fn worst_path_ordering_across_fig5_platforms() {
        // The Fig. 5 result hierarchy: NVLink platforms have the best worst
        // path, the switch platform next, the CPU/UPI platforms worst.
        let class_of = |id: SystemId| {
            id.spec()
                .topology()
                .worst_peer_path(&[0, 1, 2, 3])
                .unwrap()
                .class
        };
        assert_eq!(class_of(SystemId::C4140M), P2pClass::NvLinkDirect);
        assert_eq!(class_of(SystemId::C4140K), P2pClass::NvLinkDirect);
        assert_eq!(class_of(SystemId::C4140B), P2pClass::PcieSwitchP2p);
        assert_eq!(class_of(SystemId::T640), P2pClass::ThroughUpi);
        assert_eq!(class_of(SystemId::R940Xa), P2pClass::ThroughUpi);
    }

    #[test]
    fn dgx1v_cube_mesh_properties() {
        let spec = SystemId::Dgx1V.spec();
        assert_eq!(spec.gpu_count(), 8);
        // Directly-linked pairs are NVLink P2P; 0-1 is the doubled pair.
        let p01 = spec.topology().gpu_peer_path(0, 1).unwrap();
        assert_eq!(p01.class, P2pClass::NvLinkDirect);
        let p02 = spec.topology().gpu_peer_path(0, 2).unwrap();
        assert!(p01.bandwidth.as_bytes_per_sec() > p02.bandwidth.as_bytes_per_sec());
        // 0-5 has no direct brick: it relays over an NVLink neighbour
        // without touching a CPU.
        let p05 = spec.topology().gpu_peer_path(0, 5).unwrap();
        assert_ne!(p05.class, P2pClass::NvLinkDirect);
        assert!(p05.class.supports_p2p(), "relay path avoids the CPUs");
        assert_eq!(p05.path.hops(), 2);
        // The 8-GPU worst path stays P2P-capable: a single NCCL domain.
        let worst = spec
            .topology()
            .worst_peer_path(&(0..8).collect::<Vec<_>>())
            .unwrap();
        assert!(worst.class.supports_p2p());
        // Excluded from the paper's platform list.
        assert!(!SystemId::ALL.contains(&SystemId::Dgx1V));
    }

    #[test]
    fn reference_machine_is_single_p100() {
        let spec = SystemId::ReferenceP100.spec();
        assert_eq!(spec.gpu_model(), GpuModel::TeslaP100Pcie16);
        assert_eq!(spec.gpu_count(), 1);
    }

    #[test]
    fn display_summarizes_platform() {
        let s = SystemId::C4140K.spec().to_string();
        assert!(s.contains("C4140 (K)") && s.contains("NVLink"));
    }
}
