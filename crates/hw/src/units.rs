//! Strongly-typed physical quantities used throughout the hardware models.
//!
//! Every quantity in the simulator flows through one of these newtypes so that
//! bandwidths cannot be confused with compute rates, nor byte counts with FLOP
//! counts ([C-NEWTYPE]). All types are plain `f64`/`u64` wrappers and are
//! `Copy`; arithmetic that makes dimensional sense is provided as operators.
//!
//! # Examples
//!
//! ```
//! use mlperf_hw::units::{Bytes, Bandwidth, Seconds};
//!
//! let payload = Bytes::from_mib(512);
//! let link = Bandwidth::from_gib_per_sec(16.0);
//! let t: Seconds = payload / link;
//! assert!((t.as_secs() - 0.03125).abs() < 1e-12);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * KIB;
const GIB: u64 = 1024 * MIB;

/// A number of bytes (memory footprint, transfer volume, capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Construct from binary kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * KIB)
    }

    /// Construct from binary mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * MIB)
    }

    /// Construct from binary gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * GIB)
    }

    /// Construct from a fractional number of gibibytes.
    ///
    /// # Panics
    ///
    /// Panics if `gib` is negative or not finite.
    pub fn from_gib_f64(gib: f64) -> Self {
        assert!(
            gib.is_finite() && gib >= 0.0,
            "byte count must be finite and non-negative"
        );
        Bytes((gib * GIB as f64).round() as u64)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count as `f64` (for rate arithmetic).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// The byte count in mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// The byte count in gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / GIB as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a dimensionless factor, rounding to the nearest byte.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Bytes {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        Bytes((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= GIB {
            write!(f, "{:.2} GiB", self.as_gib())
        } else if self.0 >= MIB {
            write!(f, "{:.2} MiB", self.as_mib())
        } else if self.0 >= KIB {
            write!(f, "{:.2} KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// A count of floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Flops(pub u64);

impl Flops {
    /// Zero FLOPs.
    pub const ZERO: Flops = Flops(0);

    /// Construct from a raw operation count.
    pub const fn new(flops: u64) -> Self {
        Flops(flops)
    }

    /// Construct from GFLOPs (10^9 operations).
    pub fn from_gflops(gflops: f64) -> Self {
        assert!(
            gflops.is_finite() && gflops >= 0.0,
            "flop count must be finite and non-negative"
        );
        Flops((gflops * 1e9).round() as u64)
    }

    /// The raw operation count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The operation count as `f64`.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// The operation count in GFLOPs.
    pub fn as_gflops(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale by a dimensionless factor, rounding to the nearest operation.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Flops {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        Flops((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Flops {
    type Output = Flops;
    fn add(self, rhs: Flops) -> Flops {
        Flops(self.0 + rhs.0)
    }
}

impl AddAssign for Flops {
    fn add_assign(&mut self, rhs: Flops) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Flops {
    type Output = Flops;
    fn mul(self, rhs: u64) -> Flops {
        Flops(self.0 * rhs)
    }
}

impl Sum for Flops {
    fn sum<I: Iterator<Item = Flops>>(iter: I) -> Flops {
        iter.fold(Flops::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Flops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000_000 {
            write!(f, "{:.2} TFLOP", self.0 as f64 / 1e12)
        } else if self.0 >= 1_000_000_000 {
            write!(f, "{:.2} GFLOP", self.as_gflops())
        } else {
            write!(f, "{} FLOP", self.0)
        }
    }
}

/// A data-transfer or memory-access rate in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Construct from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is negative or not finite.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec >= 0.0,
            "bandwidth must be finite and non-negative"
        );
        Bandwidth(bytes_per_sec)
    }

    /// Construct from decimal gigabytes per second (vendor-datasheet units).
    pub fn from_gb_per_sec(gb: f64) -> Self {
        Bandwidth::new(gb * 1e9)
    }

    /// Construct from binary gibibytes per second.
    pub fn from_gib_per_sec(gib: f64) -> Self {
        Bandwidth::new(gib * GIB as f64)
    }

    /// Construct from decimal megabytes per second.
    pub fn from_mb_per_sec(mb: f64) -> Self {
        Bandwidth::new(mb * 1e6)
    }

    /// The rate in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// The rate in decimal gigabytes per second.
    pub fn as_gb_per_sec(self) -> f64 {
        self.0 / 1e9
    }

    /// The rate in megabits per second (the unit Table V of the paper reports).
    pub fn as_mbit_per_sec(self) -> f64 {
        self.0 * 8.0 / 1e6
    }

    /// Scale by a dimensionless efficiency factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Bandwidth {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        Bandwidth(self.0 * factor)
    }

    /// The smaller of two bandwidths (bottleneck composition).
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth::new(self.0 * rhs)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GB/s", self.as_gb_per_sec())
    }
}

/// A compute rate in floating-point operations per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct FlopRate(f64);

impl FlopRate {
    /// Zero throughput.
    pub const ZERO: FlopRate = FlopRate(0.0);

    /// Construct from operations per second.
    ///
    /// # Panics
    ///
    /// Panics if `flops_per_sec` is negative or not finite.
    pub fn new(flops_per_sec: f64) -> Self {
        assert!(
            flops_per_sec.is_finite() && flops_per_sec >= 0.0,
            "flop rate must be finite and non-negative"
        );
        FlopRate(flops_per_sec)
    }

    /// Construct from TFLOP/s.
    pub fn from_tflops(tf: f64) -> Self {
        FlopRate::new(tf * 1e12)
    }

    /// Construct from GFLOP/s.
    pub fn from_gflops(gf: f64) -> Self {
        FlopRate::new(gf * 1e9)
    }

    /// The rate in operations per second.
    pub fn as_flops_per_sec(self) -> f64 {
        self.0
    }

    /// The rate in GFLOP/s.
    pub fn as_gflops(self) -> f64 {
        self.0 / 1e9
    }

    /// The rate in TFLOP/s.
    pub fn as_tflops(self) -> f64 {
        self.0 / 1e12
    }

    /// Scale by a dimensionless efficiency factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> FlopRate {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        FlopRate(self.0 * factor)
    }

    /// The smaller of two rates.
    pub fn min(self, other: FlopRate) -> FlopRate {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for FlopRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} TFLOP/s", self.as_tflops())
    }
}

/// A duration in simulated seconds.
///
/// Unlike [`std::time::Duration`] this type is a plain `f64`, because the
/// simulator composes times arithmetically (rates, ratios, overlap factors)
/// where nanosecond integer precision buys nothing.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Construct from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn new(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        Seconds(secs)
    }

    /// Construct from minutes.
    pub fn from_minutes(mins: f64) -> Self {
        Seconds::new(mins * 60.0)
    }

    /// Construct from hours.
    pub fn from_hours(hours: f64) -> Self {
        Seconds::new(hours * 3600.0)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Seconds::new(us * 1e-6)
    }

    /// The duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The duration in minutes (the unit Table IV of the paper reports).
    pub fn as_minutes(self) -> f64 {
        self.0 / 60.0
    }

    /// The duration in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Scale by a dimensionless factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Seconds {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        Seconds(self.0 * factor)
    }

    /// The larger of two durations.
    pub fn max(self, other: Seconds) -> Seconds {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: Seconds) -> Seconds {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        assert!(self.0 >= rhs.0, "duration subtraction would go negative");
        Seconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds::new(self.0 * rhs)
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3600.0 {
            write!(f, "{:.2} h", self.as_hours())
        } else if self.0 >= 60.0 {
            write!(f, "{:.2} min", self.as_minutes())
        } else {
            write!(f, "{:.3} s", self.0)
        }
    }
}

// --- dimensional arithmetic -------------------------------------------------

impl Div<Bandwidth> for Bytes {
    type Output = Seconds;
    /// Transfer time of `self` over a link of the given bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero while the byte count is non-zero.
    fn div(self, rhs: Bandwidth) -> Seconds {
        if self.0 == 0 {
            return Seconds::ZERO;
        }
        assert!(
            rhs.0 > 0.0,
            "cannot transfer {self} over a zero-bandwidth link"
        );
        Seconds::new(self.as_f64() / rhs.0)
    }
}

impl Div<FlopRate> for Flops {
    type Output = Seconds;
    /// Execution time of `self` at the given sustained compute rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero while the operation count is non-zero.
    fn div(self, rhs: FlopRate) -> Seconds {
        if self.0 == 0 {
            return Seconds::ZERO;
        }
        assert!(rhs.0 > 0.0, "cannot execute {self} at a zero compute rate");
        Seconds::new(self.as_f64() / rhs.0)
    }
}

impl Div<Seconds> for Bytes {
    type Output = Bandwidth;
    /// Average transfer rate when `self` bytes move in the given time.
    fn div(self, rhs: Seconds) -> Bandwidth {
        if self.0 == 0 {
            return Bandwidth::ZERO;
        }
        assert!(rhs.0 > 0.0, "cannot compute a rate over zero time");
        Bandwidth::new(self.as_f64() / rhs.0)
    }
}

impl Div<Seconds> for Flops {
    type Output = FlopRate;
    /// Average compute rate when `self` operations complete in the given time.
    fn div(self, rhs: Seconds) -> FlopRate {
        if self.0 == 0 {
            return FlopRate::ZERO;
        }
        assert!(rhs.0 > 0.0, "cannot compute a rate over zero time");
        FlopRate::new(self.as_f64() / rhs.0)
    }
}

impl Div<Bytes> for Flops {
    type Output = f64;
    /// Arithmetic intensity: FLOPs per byte of memory traffic.
    fn div(self, rhs: Bytes) -> f64 {
        assert!(rhs.0 > 0, "arithmetic intensity undefined for zero bytes");
        self.as_f64() / rhs.as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors_and_views() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::from_gib(2).as_gib(), 2.0);
        assert_eq!(Bytes::from_gib_f64(0.5).as_mib(), 512.0);
    }

    #[test]
    fn bytes_arithmetic() {
        let a = Bytes::new(100);
        let b = Bytes::new(50);
        assert_eq!(a + b, Bytes::new(150));
        assert_eq!(a - b, Bytes::new(50));
        assert_eq!(a * 3, Bytes::new(300));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.scale(0.5), Bytes::new(50));
        let total: Bytes = [a, b, b].into_iter().sum();
        assert_eq!(total, Bytes::new(200));
    }

    #[test]
    fn bytes_display_picks_unit() {
        assert_eq!(Bytes::new(12).to_string(), "12 B");
        assert_eq!(Bytes::from_kib(4).to_string(), "4.00 KiB");
        assert_eq!(Bytes::from_mib(3).to_string(), "3.00 MiB");
        assert_eq!(Bytes::from_gib(1).to_string(), "1.00 GiB");
    }

    #[test]
    fn flops_conversions() {
        assert_eq!(Flops::from_gflops(2.5).as_u64(), 2_500_000_000);
        assert!((Flops::new(3_000_000_000).as_gflops() - 3.0).abs() < 1e-12);
        assert_eq!(Flops::new(10).scale(2.5), Flops::new(25));
    }

    #[test]
    fn bandwidth_units() {
        let bw = Bandwidth::from_gb_per_sec(15.8);
        assert!((bw.as_gb_per_sec() - 15.8).abs() < 1e-9);
        // 1 MB/s == 8 Mbit/s.
        assert!((Bandwidth::from_mb_per_sec(1.0).as_mbit_per_sec() - 8.0).abs() < 1e-9);
        assert_eq!(
            bw.min(Bandwidth::from_gb_per_sec(10.0)).as_gb_per_sec(),
            10.0
        );
    }

    #[test]
    fn transfer_time_division() {
        let t = Bytes::from_gib(1) / Bandwidth::from_gib_per_sec(2.0);
        assert!((t.as_secs() - 0.5).abs() < 1e-12);
        assert_eq!(Bytes::ZERO / Bandwidth::ZERO, Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero-bandwidth")]
    fn transfer_over_dead_link_panics() {
        let _ = Bytes::new(1) / Bandwidth::ZERO;
    }

    #[test]
    fn compute_time_division() {
        let t = Flops::from_gflops(100.0) / FlopRate::from_gflops(50.0);
        assert!((t.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rates_from_observations() {
        let bw = Bytes::from_gib(4) / Seconds::new(2.0);
        assert!((bw.as_bytes_per_sec() - 2.0 * 1024.0 * 1024.0 * 1024.0).abs() < 1.0);
        let rate = Flops::from_gflops(10.0) / Seconds::new(5.0);
        assert!((rate.as_gflops() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_intensity() {
        let ai = Flops::new(400) / Bytes::new(100);
        assert!((ai - 4.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_constructors_and_ordering() {
        assert_eq!(Seconds::from_minutes(2.0).as_secs(), 120.0);
        assert_eq!(Seconds::from_hours(1.0).as_minutes(), 60.0);
        assert!((Seconds::from_micros(5.0).as_secs() - 5e-6).abs() < 1e-18);
        let a = Seconds::new(1.0);
        let b = Seconds::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let total: Seconds = [a, b].into_iter().sum();
        assert_eq!(total.as_secs(), 3.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn seconds_subtraction_underflow_panics() {
        let _ = Seconds::new(1.0) - Seconds::new(2.0);
    }

    #[test]
    fn display_formats_are_nonempty() {
        // C-DEBUG-NONEMPTY analogue for Display.
        for s in [
            Bytes::ZERO.to_string(),
            Flops::ZERO.to_string(),
            Bandwidth::ZERO.to_string(),
            FlopRate::ZERO.to_string(),
            Seconds::ZERO.to_string(),
        ] {
            assert!(!s.is_empty());
        }
    }
}
