//! Gradient all-reduce cost models.
//!
//! Synchronous data-parallel training ends every step with an all-reduce of
//! the gradient vector. NCCL's ring algorithm moves `2·(N−1)/N · B` bytes
//! through every GPU; its speed is set by the *worst* GPU-to-GPU path in the
//! ring — which is exactly how the paper's topology hierarchy (NVLink >
//! PCIe-switch P2P > through-CPU > through-UPI, §V-E) turns into training
//! time. Tree and naive algorithms are provided for the ablation benches.

use mlperf_hw::topology::{P2pClass, PeerPath};
use mlperf_hw::units::{Bytes, Seconds};
use std::fmt;

/// The collective algorithm reducing gradients across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllReduceAlgorithm {
    /// Bandwidth-optimal ring (NCCL's default at these scales).
    #[default]
    Ring,
    /// Binary-tree reduce + broadcast (latency-optimal for small payloads).
    Tree,
    /// Gather-to-root then broadcast (the strawman baseline).
    Naive,
    /// Parameter-server exchange: every worker pushes its gradient to host
    /// memory and pulls fresh weights back — 2018-era TensorFlow's default
    /// distribution strategy, which never touches NVLink.
    ParameterServer,
}

impl fmt::Display for AllReduceAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AllReduceAlgorithm::Ring => "ring",
            AllReduceAlgorithm::Tree => "tree",
            AllReduceAlgorithm::Naive => "naive",
            AllReduceAlgorithm::ParameterServer => "parameter-server",
        };
        f.write_str(s)
    }
}

/// How many concurrent ring transfers contend for the bottleneck medium of
/// a peer path of the given class with `n` participants.
///
/// NVLink pairs own dedicated bricks and PCIe switches are internally
/// non-blocking for disjoint pairs. Without GPUDirect P2P the transfer must
/// *stage through host memory* (a device-to-host copy then host-to-device:
/// each byte crosses PCIe twice), and concurrent ring transfers additionally
/// share the root complex — a combined factor of ~4 on the effective
/// bandwidth of through-CPU/UPI paths.
fn contention_factor(class: P2pClass, n: u64) -> f64 {
    match class {
        P2pClass::NvLinkDirect | P2pClass::PcieSwitchP2p => 1.0,
        P2pClass::ThroughCpu => 4.0_f64.min(2.0 * n as f64),
        P2pClass::ThroughUpi => 4.0_f64.min(2.0 * n as f64),
    }
}

/// Time for one all-reduce of `bytes` across `n` GPUs whose worst pair is
/// `peer`.
///
/// Returns [`Seconds::ZERO`] for `n <= 1`.
///
/// # Examples
///
/// ```
/// use mlperf_hw::systems::SystemId;
/// use mlperf_hw::units::Bytes;
/// use mlperf_sim::allreduce::{allreduce_time, AllReduceAlgorithm};
///
/// let system = SystemId::C4140K.spec();
/// let peer = system.topology().worst_peer_path(&[0, 1, 2, 3])?;
/// let t = allreduce_time(AllReduceAlgorithm::Ring, Bytes::from_mib(100), 4, &peer);
/// assert!(t.as_secs() > 0.0);
/// # Ok::<(), mlperf_hw::TopologyError>(())
/// ```
pub fn allreduce_time(alg: AllReduceAlgorithm, bytes: Bytes, n: u64, peer: &PeerPath) -> Seconds {
    if n <= 1 || bytes == Bytes::ZERO {
        return Seconds::ZERO;
    }
    let bw = peer.bandwidth.scale(1.0 / contention_factor(peer.class, n));
    let alpha = peer.latency;
    let nf = n as f64;
    match alg {
        AllReduceAlgorithm::Ring => {
            // 2(N-1) pipeline steps of B/N bytes each.
            let volume = bytes.scale(2.0 * (nf - 1.0) / nf);
            volume / bw + alpha.scale(2.0 * (nf - 1.0))
        }
        AllReduceAlgorithm::Tree => {
            let rounds = (64 - (n - 1).leading_zeros()) as f64; // ceil(log2 n)
            (bytes / bw).scale(2.0 * rounds) + alpha.scale(2.0 * rounds)
        }
        AllReduceAlgorithm::Naive => (bytes / bw).scale(2.0 * (nf - 1.0)) + alpha.scale(2.0),
        AllReduceAlgorithm::ParameterServer => {
            // All n workers push B and pull B through the shared host
            // memory path; the peer path's bandwidth stands in for the
            // per-worker host link here (plan_allreduce routes PS over the
            // true host path).
            (bytes / bw).scale(2.0 * nf) + alpha.scale(2.0)
        }
    }
}

/// Bytes each participant pushes onto the wire during a ring all-reduce —
/// the quantity the bus-utilization counters (Table V) integrate.
pub fn ring_wire_bytes_per_gpu(bytes: Bytes, n: u64) -> Bytes {
    if n <= 1 {
        return Bytes::ZERO;
    }
    bytes.scale(2.0 * (n as f64 - 1.0) / n as f64)
}

/// A topology-aware all-reduce plan: NCCL groups GPUs into GPUDirect-P2P
/// *domains* (an NVLink mesh, a PCIe-switch complex) and reduces
/// hierarchically — a ring inside each domain, then a shard exchange across
/// domains over the slow path, then an in-domain allgather. This is why an
/// 8-GPU DSS 8440 run does not pay the UPI price on its full gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectivePlan {
    /// Time for one all-reduce of the planned payload.
    pub time: Seconds,
    /// The slowest path class any byte crosses.
    pub worst_class: P2pClass,
    /// Wire bytes each GPU pushes (for the bus counters).
    pub wire_bytes_per_gpu: Bytes,
}

/// Plan an all-reduce of `bytes` over the given GPU ordinals of a topology.
///
/// # Errors
///
/// Propagates routing errors from the topology.
///
/// # Panics
///
/// Panics if fewer than two GPUs are given.
pub fn plan_allreduce(
    topo: &mlperf_hw::Topology,
    gpus: &[u32],
    alg: AllReduceAlgorithm,
    bytes: Bytes,
) -> Result<CollectivePlan, mlperf_hw::TopologyError> {
    assert!(gpus.len() >= 2, "collective needs at least two GPUs");
    let n = gpus.len() as u64;

    // Parameter-server exchange never runs GPU-to-GPU: every worker talks
    // to host memory over its own host path, contending at the root.
    if alg == AllReduceAlgorithm::ParameterServer {
        let mut worst_host = f64::INFINITY;
        let mut latency = Seconds::ZERO;
        for &g in gpus {
            let path = topo.gpu_host_path(g)?;
            worst_host = worst_host.min(path.bottleneck_bandwidth().as_bytes_per_sec());
            latency = latency.max(path.latency());
        }
        let per_worker = mlperf_hw::Bandwidth::new(worst_host / n as f64);
        let time = (bytes / per_worker).scale(2.0) + latency.scale(2.0);
        return Ok(CollectivePlan {
            time,
            worst_class: P2pClass::ThroughCpu,
            wire_bytes_per_gpu: bytes.scale(2.0),
        });
    }

    // Partition into P2P domains with union-find over pairwise paths.
    let mut parent: Vec<usize> = (0..gpus.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    let mut worst_intra: Option<PeerPath> = None;
    let mut worst_inter: Option<PeerPath> = None;
    let mut pairs = Vec::new();
    for (i, &a) in gpus.iter().enumerate() {
        for (j, &b) in gpus.iter().enumerate().skip(i + 1) {
            let p = topo.gpu_peer_path(a, b)?;
            if p.class.supports_p2p() {
                let (ra, rb) = (find(&mut parent, i), find(&mut parent, j));
                if ra != rb {
                    parent[ra] = rb;
                }
            }
            pairs.push((i, j, p));
        }
    }
    for (i, j, p) in pairs {
        let same = find(&mut parent, i) == find(&mut parent, j);
        let slot = if same {
            &mut worst_intra
        } else {
            &mut worst_inter
        };
        let replace = match slot {
            None => true,
            Some(w) => {
                (
                    p.class,
                    std::cmp::Reverse(p.bandwidth.as_bytes_per_sec() as u64),
                ) > (
                    w.class,
                    std::cmp::Reverse(w.bandwidth.as_bytes_per_sec() as u64),
                )
            }
        };
        if replace {
            *slot = Some(p);
        }
    }

    let wire = ring_wire_bytes_per_gpu(bytes, n);
    match worst_inter {
        None => {
            // Single domain: flat collective.
            let peer = worst_intra.expect("n >= 2 implies at least one pair");
            Ok(CollectivePlan {
                time: allreduce_time(alg, bytes, n, &peer),
                worst_class: peer.class,
                wire_bytes_per_gpu: wire,
            })
        }
        Some(inter) => {
            // Hierarchical: in-domain ring + cross-domain shard exchange.
            let mut domain_sizes = std::collections::HashMap::new();
            for i in 0..gpus.len() {
                *domain_sizes.entry(find(&mut parent, i)).or_insert(0u64) += 1;
            }
            let groups = domain_sizes.len() as u64;
            let max_domain = domain_sizes.values().copied().max().expect("non-empty");
            let min_domain = domain_sizes.values().copied().min().expect("non-empty");
            let intra_time = match (worst_intra, max_domain) {
                (Some(peer), k) if k > 1 => allreduce_time(alg, bytes, k, &peer),
                _ => Seconds::ZERO,
            };
            // Each domain leader exchanges its 1/k shard across domains.
            let shard = bytes.scale(1.0 / min_domain.max(1) as f64);
            let inter_time = allreduce_time(alg, shard, groups, &inter);
            Ok(CollectivePlan {
                time: intra_time + inter_time,
                worst_class: inter.class,
                wire_bytes_per_gpu: wire,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_hw::topology::Path;
    use mlperf_hw::units::Bandwidth;

    fn peer(class: P2pClass, gb_per_sec: f64) -> PeerPath {
        PeerPath {
            class,
            bandwidth: Bandwidth::from_gb_per_sec(gb_per_sec),
            latency: Seconds::from_micros(2.0),
            path: Path {
                nodes: Vec::new(),
                links: Vec::new(),
            },
        }
    }

    #[test]
    fn single_gpu_is_free() {
        let p = peer(P2pClass::NvLinkDirect, 45.0);
        for alg in [
            AllReduceAlgorithm::Ring,
            AllReduceAlgorithm::Tree,
            AllReduceAlgorithm::Naive,
        ] {
            assert_eq!(
                allreduce_time(alg, Bytes::from_mib(100), 1, &p),
                Seconds::ZERO
            );
        }
        assert_eq!(
            ring_wire_bytes_per_gpu(Bytes::from_mib(100), 1),
            Bytes::ZERO
        );
    }

    #[test]
    fn zero_bytes_are_free() {
        let p = peer(P2pClass::NvLinkDirect, 45.0);
        assert_eq!(
            allreduce_time(AllReduceAlgorithm::Ring, Bytes::ZERO, 4, &p),
            Seconds::ZERO
        );
    }

    #[test]
    fn ring_time_matches_alpha_beta_model() {
        let p = peer(P2pClass::NvLinkDirect, 50.0);
        let bytes = Bytes::from_gib(1);
        let t = allreduce_time(AllReduceAlgorithm::Ring, bytes, 4, &p);
        let expected = 2.0 * 3.0 / 4.0 * bytes.as_f64() / 50e9 + 6.0 * 2e-6;
        assert!((t.as_secs() - expected).abs() < 1e-9, "{t}");
    }

    #[test]
    fn nvlink_beats_pcie_beats_upi() {
        let bytes = Bytes::from_mib(400);
        let nv = allreduce_time(
            AllReduceAlgorithm::Ring,
            bytes,
            4,
            &peer(P2pClass::NvLinkDirect, 45.0),
        );
        let sw = allreduce_time(
            AllReduceAlgorithm::Ring,
            bytes,
            4,
            &peer(P2pClass::PcieSwitchP2p, 13.4),
        );
        let upi = allreduce_time(
            AllReduceAlgorithm::Ring,
            bytes,
            4,
            &peer(P2pClass::ThroughUpi, 13.4),
        );
        assert!(nv.as_secs() < sw.as_secs());
        assert!(
            sw.as_secs() < upi.as_secs(),
            "contention should slow UPI paths"
        );
    }

    #[test]
    fn ring_scales_gently_with_n() {
        let p = peer(P2pClass::NvLinkDirect, 45.0);
        let bytes = Bytes::from_mib(400);
        let t2 = allreduce_time(AllReduceAlgorithm::Ring, bytes, 2, &p);
        let t8 = allreduce_time(AllReduceAlgorithm::Ring, bytes, 8, &p);
        // Ring volume grows 2(N-1)/N: from 1.0x to 1.75x of B, not 4x.
        assert!(t8.as_secs() < 2.0 * t2.as_secs());
    }

    #[test]
    fn naive_is_worst_for_large_payloads() {
        let p = peer(P2pClass::PcieSwitchP2p, 13.0);
        let bytes = Bytes::from_mib(400);
        let ring = allreduce_time(AllReduceAlgorithm::Ring, bytes, 8, &p);
        let tree = allreduce_time(AllReduceAlgorithm::Tree, bytes, 8, &p);
        let naive = allreduce_time(AllReduceAlgorithm::Naive, bytes, 8, &p);
        assert!(ring.as_secs() < tree.as_secs());
        assert!(tree.as_secs() < naive.as_secs());
    }

    #[test]
    fn tree_wins_for_tiny_payloads() {
        let p = peer(P2pClass::NvLinkDirect, 45.0);
        let bytes = Bytes::from_kib(4);
        let ring = allreduce_time(AllReduceAlgorithm::Ring, bytes, 8, &p);
        let tree = allreduce_time(AllReduceAlgorithm::Tree, bytes, 8, &p);
        // 2*(N-1)=14 latency terms vs 2*log2(8)=6.
        assert!(tree.as_secs() < ring.as_secs());
    }

    #[test]
    fn parameter_server_avoids_nvlink_and_costs_more() {
        use crate::allreduce::plan_allreduce;
        let system = mlperf_hw::systems::SystemId::C4140K.spec();
        let grads = Bytes::from_mib(100);
        let gpus = [0u32, 1, 2, 3];
        let ring =
            plan_allreduce(system.topology(), &gpus, AllReduceAlgorithm::Ring, grads).unwrap();
        let ps = plan_allreduce(
            system.topology(),
            &gpus,
            AllReduceAlgorithm::ParameterServer,
            grads,
        )
        .unwrap();
        // PS traffic is classified to the host path: the NVLink counters
        // stay dark even on an NVLink machine (2018-era TF's Table V look).
        assert_eq!(ps.worst_class, P2pClass::ThroughCpu);
        assert_eq!(ring.worst_class, P2pClass::NvLinkDirect);
        assert!(ps.time.as_secs() > 3.0 * ring.time.as_secs());
    }

    #[test]
    fn wire_bytes_formula() {
        let b = Bytes::new(1000);
        assert_eq!(ring_wire_bytes_per_gpu(b, 2), Bytes::new(1000));
        assert_eq!(ring_wire_bytes_per_gpu(b, 4), Bytes::new(1500));
        assert_eq!(ring_wire_bytes_per_gpu(b, 8), Bytes::new(1750));
    }

    #[test]
    fn display_names() {
        assert_eq!(AllReduceAlgorithm::Ring.to_string(), "ring");
    }
}
