//! The training-pipeline simulation engine.
//!
//! One training step is a pipeline: host workers preprocess the next batch
//! (shared CPU loader), the tensors cross the host link (shared PCIe
//! uplinks where the topology has them), each GPU runs forward+backward
//! (roofline-priced), the replicas all-reduce gradients (partially hidden
//! behind backward), and the optimizer updates. The engine executes this
//! pipeline iteration-by-iteration over shared [`FifoResource`]s with
//! prefetching, then reports the steady-state step time and the phase and
//! resource accounting the telemetry layer turns into Table V.
//!
//! Scaling behaviour is *emergent* here: adding GPUs grows the all-reduce,
//! queues more work on the loader and shared uplinks, and (for capped-batch
//! jobs) shrinks the per-GPU batch — the three mechanisms §IV-D and §V
//! attribute the observed scaling curves to.

use crate::allreduce::plan_allreduce;
use crate::des::FifoResource;
use crate::job::TrainingJob;
use crate::kernel::KernelTimer;
use mlperf_hw::gpu::GpuSpec;
use mlperf_hw::partition::PartitionError;
use mlperf_hw::systems::SystemSpec;
use mlperf_hw::topology::{NodeId, P2pClass};
use mlperf_hw::units::{Bytes, Seconds};
use mlperf_models::IterationCost;
use std::fmt;

/// Iterations simulated before measurement starts (pipeline fill).
const WARMUP_ITERS: u64 = 8;
/// Iterations measured for the steady-state averages.
const MEASURE_ITERS: u64 = 32;

/// Fraction of the compute phase that is the backward pass (the window
/// bucketed all-reduce can hide under).
const BWD_FRACTION: f64 = 2.0 / 3.0;

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The GPU set is empty or names ordinals outside the system.
    BadGpuSet(String),
    /// The training replica does not fit in device memory.
    OutOfMemory {
        /// Bytes the replica needs.
        required: Bytes,
        /// Bytes the device has.
        available: Bytes,
    },
    /// Topology routing failed.
    Topology(mlperf_hw::TopologyError),
    /// The job's device partition is invalid on this system's GPU (typed
    /// layout refusal from `mlperf_hw::partition` — never a clamp).
    Partition(PartitionError),
    /// An analytical-model boundary produced NaN/Inf or a degenerate
    /// cost; `context` names the offending (benchmark, system,
    /// precision, batch) point.
    NonFinite {
        /// Human-readable description of the offending point.
        context: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadGpuSet(msg) => write!(f, "bad GPU set: {msg}"),
            SimError::OutOfMemory {
                required,
                available,
            } => {
                write!(f, "replica needs {required} but device has {available}")
            }
            SimError::Topology(e) => write!(f, "topology error: {e}"),
            SimError::Partition(e) => write!(f, "bad partition: {e}"),
            SimError::NonFinite { context } => {
                write!(f, "non-finite output: {context}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Topology(e) => Some(e),
            SimError::Partition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mlperf_hw::TopologyError> for SimError {
    fn from(e: mlperf_hw::TopologyError) -> Self {
        SimError::Topology(e)
    }
}

/// Steady-state accounting for one training step of one job on one system.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// GPUs used.
    pub n_gpus: u64,
    /// Effective per-GPU batch after any global cap.
    pub per_gpu_batch: u64,
    /// Steady-state wall-clock time per step.
    pub step_time: Seconds,
    /// Forward+backward device time per step.
    pub compute_time: Seconds,
    /// Optimizer update time per step.
    pub opt_time: Seconds,
    /// Full (pre-overlap) gradient all-reduce time per step.
    pub allreduce_time: Seconds,
    /// All-reduce time left exposed after overlap with backward.
    pub exposed_comm: Seconds,
    /// Average per-step time a GPU waits on the input pipeline.
    pub data_stall: Seconds,
    /// Fraction of the step each GPU spends with kernels resident.
    pub gpu_busy_fraction: f64,
    /// Host CPU busy time per step (reference-core-seconds, whole chassis).
    pub cpu_core_secs_per_step: f64,
    /// Host-to-device input bytes per step, summed over GPUs.
    pub h2d_bytes_per_step: Bytes,
    /// All-reduce wire bytes per step, summed over GPUs.
    pub wire_bytes_per_step: Bytes,
    /// The classification of the worst peer path the collective crosses
    /// (`None` on a single GPU).
    pub comm_class: Option<P2pClass>,
    /// Device-memory footprint per GPU.
    pub hbm_per_gpu: Bytes,
    /// Host DRAM footprint for the whole job.
    pub dram_footprint: Bytes,
    /// The iteration cost that was priced (for roofline/telemetry reuse).
    pub iteration_cost: IterationCost,
}

impl StepReport {
    /// Samples per second of wall-clock at steady state.
    pub fn throughput_samples_per_sec(&self) -> f64 {
        (self.per_gpu_batch * self.n_gpus) as f64 / self.step_time.as_secs()
    }
}

/// Everything one engine invocation needs: the job, the GPU ordinals, and
/// whether to record the per-iteration timeline.
///
/// This is the single entry-point descriptor the old
/// `run`/`run_traced`/`run_on_first` trio collapsed into — and the unit the
/// executor's memo cache keys on (a [`RunSpec`] plus the platform identify
/// a simulation point).
#[derive(Debug, Clone)]
pub struct RunSpec {
    job: TrainingJob,
    gpus: Vec<u32>,
    record_trace: bool,
    faults: Option<crate::fault::FaultConfig>,
}

impl RunSpec {
    /// Run `job` on the explicit GPU ordinals `gpus`.
    pub fn new(job: TrainingJob, gpus: impl Into<Vec<u32>>) -> Self {
        RunSpec {
            job,
            gpus: gpus.into(),
            record_trace: false,
            faults: None,
        }
    }

    /// Run `job` on the first `n` GPUs of the system.
    pub fn on_first(job: TrainingJob, n: u32) -> Self {
        RunSpec::new(job, (0..n).collect::<Vec<u32>>())
    }

    /// Also record the full per-iteration phase timeline (the
    /// high-fidelity input the telemetry loggers replay).
    #[must_use]
    pub fn traced(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Also replay a seeded fault scenario against the steady-state step:
    /// the outcome gains [`FaultOutcome`](crate::fault::FaultOutcome)
    /// statistics (checkpoint tax, lost work, retries, restarts).
    #[must_use]
    pub fn with_faults(mut self, config: crate::fault::FaultConfig) -> Self {
        self.faults = Some(config);
        self
    }

    /// The job to simulate.
    pub fn job(&self) -> &TrainingJob {
        &self.job
    }

    /// The GPU ordinals the job runs on.
    pub fn gpus(&self) -> &[u32] {
        &self.gpus
    }

    /// Whether the per-iteration timeline is recorded.
    pub fn records_trace(&self) -> bool {
        self.record_trace
    }

    /// The fault scenario to replay, if any.
    pub fn faults(&self) -> Option<&crate::fault::FaultConfig> {
        self.faults.as_ref()
    }
}

/// What one [`Simulator::execute`] call produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Steady-state accounting.
    pub report: StepReport,
    /// The per-iteration timeline, when the spec asked for one.
    pub trace: Option<crate::trace::RunTrace>,
    /// Fault/recovery statistics, when the spec carried a fault scenario.
    pub faults: Option<crate::fault::FaultOutcome>,
}

/// The simulation engine for one platform.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    system: &'a SystemSpec,
    warmup_iters: u64,
    measure_iters: u64,
}

/// Batch-level pricing and host-pipeline shape shared by the DES loop and
/// the analytic fast path — everything `run_inner` used to derive before
/// its first iteration.
struct Prepared {
    n: u64,
    batch: u64,
    k: usize,
    depth: u64,
    compute_time: Seconds,
    launch_overhead: Seconds,
    opt_time: Seconds,
    ar_full: Seconds,
    exposed_comm: Seconds,
    comm_class: Option<P2pClass>,
    wire_per_gpu: Bytes,
    hbm_per_gpu: Bytes,
    h2d_bytes: Bytes,
    prep_service: Seconds,
    h2d_services: Vec<Seconds>,
    /// Bottleneck-edge index per GPU; GPUs whose host paths share an
    /// uplink share an entry (and therefore a FIFO resource).
    link_of: Vec<usize>,
    n_links: usize,
}

impl<'a> Simulator<'a> {
    /// Create an engine bound to a platform with the default simulation
    /// window (8 warmup + 32 measured iterations).
    pub fn new(system: &'a SystemSpec) -> Self {
        Simulator {
            system,
            warmup_iters: WARMUP_ITERS,
            measure_iters: MEASURE_ITERS,
        }
    }

    /// Override the simulation window. Steady-state results are invariant
    /// to the measurement length (tested), so this mainly trades fidelity
    /// of the warmup transient against runtime.
    ///
    /// # Panics
    ///
    /// Panics unless both counts are at least 1.
    pub fn with_window(mut self, warmup_iters: u64, measure_iters: u64) -> Self {
        assert!(
            warmup_iters >= 1 && measure_iters >= 1,
            "window must be non-empty"
        );
        self.warmup_iters = warmup_iters;
        self.measure_iters = measure_iters;
        self
    }

    /// The platform this engine simulates.
    pub fn system(&self) -> &SystemSpec {
        self.system
    }

    /// The simulation window as `(warmup, measured)` iteration counts —
    /// part of a simulation point's identity for memoization purposes.
    pub fn window(&self) -> (u64, u64) {
        (self.warmup_iters, self.measure_iters)
    }

    /// Execute the simulation described by `spec` and report the steady
    /// state (plus the per-iteration timeline if the spec requested one).
    ///
    /// # Errors
    ///
    /// * [`SimError::BadGpuSet`] — empty set, duplicate or unknown ordinals;
    /// * [`SimError::OutOfMemory`] — replica + overhead exceeds HBM;
    /// * [`SimError::Topology`] — no route between required endpoints.
    pub fn execute(&self, spec: &RunSpec) -> Result<RunOutcome, SimError> {
        let (report, trace) = self.run_inner(&spec.job, &spec.gpus, spec.record_trace)?;
        let faults = self.fault_outcome(spec, &report);
        Ok(RunOutcome {
            report,
            trace,
            faults,
        })
    }

    /// Attempt the analytic fast path for `spec`.
    ///
    /// When, after replaying the warmup fill exactly, the host loader and
    /// every H2D uplink provably stay ahead of the GPUs for the whole
    /// measured region (with a `1e-9` relative safety margin that dwarfs
    /// any rounding the serve chains can accumulate), the DES loop would
    /// take the `start = step_done` branch on every measured iteration and
    /// the step recurrence collapses to three additions per step. The
    /// returned outcome is then **bit-identical** to
    /// [`Simulator::execute`] — same report, same typed errors, same fault
    /// replay — which `tests/fastpath_diff.rs` pins differentially.
    ///
    /// Returns `Ok(None)` when eligibility cannot be proven or the spec
    /// requests a trace; the caller falls back to the full DES.
    ///
    /// # Errors
    ///
    /// As [`Simulator::execute`].
    pub fn execute_fast(&self, spec: &RunSpec) -> Result<Option<RunOutcome>, SimError> {
        if spec.record_trace {
            return Ok(None);
        }
        let Some(mut outcome) = self.execute_fast_on(&spec.job, &spec.gpus)? else {
            return Ok(None);
        };
        outcome.faults = self.fault_outcome(spec, &outcome.report);
        Ok(Some(outcome))
    }

    /// The analytic fast path on borrowed inputs — [`Simulator::execute_fast`]
    /// without a [`RunSpec`] (so no job clone and no GPU-set allocation),
    /// for callers pricing untraced, fault-free runs in bulk. Identical
    /// verdicts and bit-identical reports to `execute_fast`.
    ///
    /// # Errors
    ///
    /// As [`Simulator::execute`].
    pub fn execute_fast_on(
        &self,
        job: &TrainingJob,
        gpus: &[u32],
    ) -> Result<Option<RunOutcome>, SimError> {
        let p = self.prepare(job, gpus)?;
        let Some((step_time, data_stall)) = self.analytic_steady_state(&p) else {
            return Ok(None);
        };
        let report = self.finish(job, &p, step_time, data_stall)?;
        Ok(Some(RunOutcome {
            report,
            trace: None,
            faults: None,
        }))
    }

    /// Fault replay is deterministic post-processing of the steady state:
    /// the plan walks the run's total steps against the step report, so
    /// the healthy numbers are untouched.
    fn fault_outcome(
        &self,
        spec: &RunSpec,
        report: &StepReport,
    ) -> Option<crate::fault::FaultOutcome> {
        spec.faults.as_ref().map(|config| {
            let total_steps =
                crate::training::outcome_from_step(&spec.job, report.clone()).total_steps();
            let (stats, fault_trace) = crate::fault::replay(config, &spec.job, report, total_steps);
            crate::fault::FaultOutcome {
                stats,
                trace: fault_trace,
            }
        })
    }

    /// Simulate `job` on the GPU ordinals `gpus` and report the steady
    /// state.
    ///
    /// # Errors
    ///
    /// As [`Simulator::execute`].
    #[deprecated(note = "build a `RunSpec` and call `execute` instead")]
    pub fn run(&self, job: &TrainingJob, gpus: &[u32]) -> Result<StepReport, SimError> {
        self.run_inner(job, gpus, false).map(|(report, _)| report)
    }

    /// As the old `run`, additionally returning the full per-iteration
    /// phase timeline.
    ///
    /// # Errors
    ///
    /// As [`Simulator::execute`].
    #[deprecated(note = "build a traced `RunSpec` and call `execute` instead")]
    pub fn run_traced(
        &self,
        job: &TrainingJob,
        gpus: &[u32],
    ) -> Result<(StepReport, crate::trace::RunTrace), SimError> {
        self.run_inner(job, gpus, true)
            .map(|(report, trace)| (report, trace.expect("tracing was requested")))
    }

    /// Admission check only: validate the GPU set and run the device
    /// memory gate, without pricing anything. Returns the admitted
    /// per-GPU HBM footprint.
    ///
    /// This is the cheap front half of the full pricing pipeline —
    /// [`Simulator::execute`] performs exactly these checks first, in the
    /// same order, so a query layer that rejects on `preflight` errors
    /// produces byte-identical verdicts to one that priced the run.
    ///
    /// # Errors
    ///
    /// [`SimError::BadGpuSet`] for an empty set, an ordinal outside the
    /// system, or a duplicate; [`SimError::OutOfMemory`] when the replica
    /// does not fit in device memory.
    pub fn preflight(&self, job: &TrainingJob, gpus: &[u32]) -> Result<Bytes, SimError> {
        let topo = self.system.topology();
        if gpus.is_empty() {
            return Err(SimError::BadGpuSet("empty GPU set".into()));
        }
        if topo.gpu_count() <= 64 {
            // Allocation-free duplicate check for realistic chassis sizes
            // (this runs once per priced sweep cell).
            let mut seen = 0u64;
            for &g in gpus {
                if (g as usize) >= topo.gpu_count() {
                    return Err(SimError::BadGpuSet(format!(
                        "GPU {g} not present (system has {})",
                        topo.gpu_count()
                    )));
                }
                let bit = 1u64 << g;
                if seen & bit != 0 {
                    return Err(SimError::BadGpuSet(format!("GPU {g} listed twice")));
                }
                seen |= bit;
            }
        } else {
            let mut seen = std::collections::HashSet::new();
            for &g in gpus {
                if (g as usize) >= topo.gpu_count() {
                    return Err(SimError::BadGpuSet(format!(
                        "GPU {g} not present (system has {})",
                        topo.gpu_count()
                    )));
                }
                if !seen.insert(g) {
                    return Err(SimError::BadGpuSet(format!("GPU {g} listed twice")));
                }
            }
        }
        let n = gpus.len() as u64;
        let batch = job.effective_per_gpu_batch(n);
        let gpu_spec = self.effective_gpu_spec(job)?;

        // Gated *before* pricing: the footprint is O(1) while pricing
        // walks the graph, and wall-crossing batch sweeps reject most
        // cells here. Pricing is infallible apart from the non-finite
        // gate, so no error precedence changes for finite graphs.
        let replica = job
            .model()
            .replica_footprint(batch, job.precision(), job.optimizer());
        let hbm_per_gpu = replica
            + job.hbm_overhead()
            + job.pipeline().h2d_bytes_per_batch(batch) * job.prefetch_depth();
        if hbm_per_gpu > gpu_spec.hbm_capacity() {
            return Err(SimError::OutOfMemory {
                required: hbm_per_gpu,
                available: gpu_spec.hbm_capacity(),
            });
        }
        Ok(hbm_per_gpu)
    }

    /// The device spec the job actually runs on: the whole GPU, or — when
    /// the job carries a partition — one interference-adjusted MIG-style
    /// slice of it. Partition-free jobs take the exact pre-partition path,
    /// so their priced numbers stay bit-identical.
    fn effective_gpu_spec(&self, job: &TrainingJob) -> Result<GpuSpec, SimError> {
        let parent = self.system.gpu_model().spec();
        match job.partition() {
            None => Ok(parent),
            Some(p) => p.sliced_spec(&parent).map_err(SimError::Partition),
        }
    }

    /// Validate the GPU set and price every batch-level quantity — device
    /// phases, memory, communication, and the host-pipeline services —
    /// exactly as the monolithic `run_inner` used to, stopping just short
    /// of the iteration loop.
    fn prepare(&self, job: &TrainingJob, gpus: &[u32]) -> Result<Prepared, SimError> {
        let hbm_per_gpu = self.preflight(job, gpus)?;
        let topo = self.system.topology();
        let n = gpus.len() as u64;
        let batch = job.effective_per_gpu_batch(n);
        let gpu_spec = self.effective_gpu_spec(job)?;

        // --- price the device phases ------------------------------------
        let timer = KernelTimer::new(gpu_spec.clone(), job.efficiency());
        let pass = job.model().pass_cost(batch, job.precision());
        if let Some(why) = pass.finite_violation() {
            return Err(SimError::NonFinite {
                context: format!(
                    "{why} pricing {} on {} ({n} GPUs, {:?}, batch {batch})",
                    job.name(),
                    self.system.id().name(),
                    job.precision(),
                ),
            });
        }
        // Fixed launch/dispatch overhead is part of the device phase but
        // batch-independent — the small-batch underutilization mechanism.
        let launch_overhead = job.gpu_step_overhead();
        let compute_time = timer.step_time(&pass) + launch_overhead;
        let params = job.model().params();
        let opt_cost = IterationCost {
            simt_flops: job.optimizer().step_flops(params),
            tensor_flops: mlperf_hw::Flops::ZERO,
            mem_bytes: job.optimizer().step_bytes(params),
            gradient_bytes: Bytes::ZERO,
        };
        let opt_time = timer.step_time(&opt_cost);

        // --- communication phase ------------------------------------------
        // Gradient accumulation amortizes the exchange over `period` steps.
        let period = job.allreduce_period() as f64;
        let (ar_full, comm_class, wire_per_gpu) = if n > 1 {
            let plan = plan_allreduce(topo, gpus, job.allreduce(), pass.gradient_bytes)?;
            // A 1/k slice holds a 1/k lane share of the interconnect, so
            // the collective stretches by the slice count (wire bytes are
            // unchanged; the slowdown is exactly 1.0 partition-free).
            let comm_slowdown = job.partition().map_or(1.0, |p| p.comm_slowdown());
            (
                plan.time.scale(comm_slowdown / period),
                Some(plan.worst_class),
                plan.wire_bytes_per_gpu.scale(1.0 / period),
            )
        } else {
            (Seconds::ZERO, None, Bytes::ZERO)
        };
        // Bucketed overlap hides reduction behind backward, but the final
        // bucket (and NCCL's SM interference) always leaves a floor of the
        // collective exposed. On paths without GPUDirect P2P the staged
        // host copies serialize poorly with compute, degrading overlap.
        const MIN_EXPOSED_FRACTION: f64 = 0.25;
        const STAGED_OVERLAP_QUALITY: f64 = 0.0;
        let overlap = match comm_class {
            Some(c) if !c.supports_p2p() => job.comm_overlap() * STAGED_OVERLAP_QUALITY,
            _ => job.comm_overlap(),
        };
        let hideable = compute_time.scale(BWD_FRACTION * overlap);
        let exposed_comm = if ar_full.as_secs() > hideable.as_secs() {
            ar_full - hideable
        } else {
            ar_full.scale(MIN_EXPOSED_FRACTION)
        };

        // --- host pipeline resources --------------------------------------
        let cpu = self.system.cpu_model().spec();
        let sockets = self.system.cpu_count() as f64;
        // One chassis-wide loader; multi-socket hosts preprocess faster.
        let prep_service = job
            .pipeline()
            .host_time_per_batch(&cpu, batch)
            .scale(1.0 / sockets);

        // H2D link: each GPU charges its host path's bottleneck edge.
        // Edges are interned into a dense index so the iteration loop can
        // address its FIFO resources as a plain `Vec`.
        let h2d_bytes = job.pipeline().h2d_bytes_per_batch(batch);
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut link_of = Vec::with_capacity(gpus.len());
        let mut h2d_services = Vec::with_capacity(gpus.len());
        for &g in gpus {
            let path = topo.gpu_host_path(g)?;
            // Identify the bottleneck edge (slowest link on the path).
            let (idx, link) = path
                .links
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.effective_bandwidth()
                        .as_bytes_per_sec()
                        .partial_cmp(&b.1.effective_bandwidth().as_bytes_per_sec())
                        .expect("bandwidths are finite")
                })
                .expect("host path has at least one link");
            let key = (
                path.nodes[idx].min(path.nodes[idx + 1]),
                path.nodes[idx].max(path.nodes[idx + 1]),
            );
            let slot = edges.iter().position(|e| *e == key).unwrap_or_else(|| {
                edges.push(key);
                edges.len() - 1
            });
            link_of.push(slot);
            h2d_services.push(h2d_bytes / link.effective_bandwidth());
        }

        Ok(Prepared {
            n,
            batch,
            k: gpus.len(),
            depth: job.prefetch_depth(),
            compute_time,
            launch_overhead,
            opt_time,
            ar_full,
            exposed_comm,
            comm_class,
            wire_per_gpu,
            hbm_per_gpu,
            h2d_bytes,
            prep_service,
            h2d_services,
            n_links: edges.len(),
            link_of,
        })
    }

    fn run_inner(
        &self,
        job: &TrainingJob,
        gpus: &[u32],
        record_trace: bool,
    ) -> Result<(StepReport, Option<crate::trace::RunTrace>), SimError> {
        let p = self.prepare(job, gpus)?;

        // --- iterate the pipeline -----------------------------------------
        let warmup_iters = self.warmup_iters;
        let measure_iters = self.measure_iters;
        let total_iters = warmup_iters + measure_iters;
        let mut loader = FifoResource::new();
        let mut links = vec![FifoResource::new(); p.n_links];
        let mut step_done = Seconds::ZERO;
        let mut step_done_history: Vec<Seconds> = Vec::with_capacity(total_iters as usize);
        let mut measured_stall = Seconds::ZERO;
        let mut warmup_end = Seconds::ZERO;

        let mut trace_records = record_trace.then(|| Vec::with_capacity(total_iters as usize));
        for iter in 0..total_iters {
            // Prefetch slot: batch `iter` may be prepped once batch
            // `iter - depth` has fully completed.
            let slot_free = if iter >= p.depth {
                step_done_history[(iter - p.depth) as usize]
            } else {
                Seconds::ZERO
            };
            let mut iter_compute_done = Seconds::ZERO;
            let mut iter_stall = Seconds::ZERO;
            let mut phases = record_trace.then(|| Vec::with_capacity(p.k));
            for g in 0..p.k {
                let prep_done = loader.serve(slot_free, p.prep_service);
                let data_ready = links[p.link_of[g]].serve(prep_done, p.h2d_services[g]);
                let start = data_ready.max(step_done);
                iter_stall += start - step_done;
                let done = start + p.compute_time;
                iter_compute_done = iter_compute_done.max(done);
                if let Some(ps) = phases.as_mut() {
                    ps.push(crate::trace::GpuPhases {
                        prep_done,
                        data_ready,
                        compute_start: start,
                        compute_done: done,
                    });
                }
            }
            let done = iter_compute_done + p.exposed_comm + p.opt_time;
            if let (Some(records), Some(ps)) = (trace_records.as_mut(), phases) {
                records.push(crate::trace::IterationRecord {
                    iter,
                    gpus: ps,
                    sync: iter_compute_done,
                    allreduce_done: iter_compute_done + p.exposed_comm,
                    step_done: done,
                });
            }
            step_done_history.push(done);
            step_done = done;
            if iter == warmup_iters - 1 {
                warmup_end = done;
            }
            if iter >= warmup_iters {
                measured_stall += iter_stall.scale(1.0 / p.k as f64);
            }
        }

        let measured_span = step_done - warmup_end;
        let step_time = measured_span.scale(1.0 / measure_iters as f64);
        let data_stall = measured_stall.scale(1.0 / measure_iters as f64);

        let trace = trace_records.map(|iterations| crate::trace::RunTrace {
            iterations,
            warmup: warmup_iters,
        });

        let report = self.finish(job, &p, step_time, data_stall)?;
        Ok((report, trace))
    }

    /// Replay the warmup fill exactly, then try to prove the measured
    /// region is stall-free. Returns the `(step_time, data_stall)` pair
    /// the DES loop would produce — bit-for-bit — or `None` when
    /// eligibility cannot be established.
    fn analytic_steady_state(&self, p: &Prepared) -> Option<(Seconds, Seconds)> {
        // Relative safety slop on every upper bound — five orders of
        // magnitude above the rounding a serve chain can accumulate, so a
        // cell that passes in exact arithmetic with any real margin still
        // passes, and a cell the bound rejects merely falls back to DES.
        const SLOP: f64 = 1.0 + 1e-9;

        let warmup_iters = self.warmup_iters;
        let total_iters = warmup_iters + self.measure_iters;
        let mut loader = FifoResource::new();
        let mut links = vec![FifoResource::new(); p.n_links];
        let mut hist: Vec<Seconds> = Vec::with_capacity(total_iters as usize);
        let mut step_done = Seconds::ZERO;

        // Warmup replay — the same serves, in the same order, as
        // `run_inner`, so the fill transient is exact.
        for iter in 0..warmup_iters {
            let slot_free = if iter >= p.depth {
                hist[(iter - p.depth) as usize]
            } else {
                Seconds::ZERO
            };
            let mut iter_compute_done = Seconds::ZERO;
            for g in 0..p.k {
                let prep_done = loader.serve(slot_free, p.prep_service);
                let data_ready = links[p.link_of[g]].serve(prep_done, p.h2d_services[g]);
                let start = data_ready.max(step_done);
                let done = start + p.compute_time;
                iter_compute_done = iter_compute_done.max(done);
            }
            let done = iter_compute_done + p.exposed_comm + p.opt_time;
            hist.push(done);
            step_done = done;
        }
        let warmup_end = step_done;

        let slot_at = |hist: &Vec<Seconds>, iter: u64| {
            if iter >= p.depth {
                hist[(iter - p.depth) as usize]
            } else {
                Seconds::ZERO
            }
        };

        // The pipeline must enter the measured region caught up: every
        // host resource free no later than the prefetch slot it serves
        // next, so the first measured iteration's serves start at the slot.
        let base_slot = slot_at(&hist, warmup_iters);
        if loader.free_at() > base_slot || links.iter().any(|l| l.free_at() > base_slot) {
            return None;
        }

        // `w_bound` over-estimates the host work one iteration can stack
        // on top of its prefetch slot: the full loader chain plus the
        // busiest uplink's share, inflated by SLOP to absorb rounding.
        let mut per_link = vec![0.0f64; p.n_links];
        for g in 0..p.k {
            per_link[p.link_of[g]] += p.h2d_services[g].as_secs();
        }
        let busiest = per_link.iter().fold(0.0f64, |a, &b| a.max(b));
        let w_bound = (p.k as f64 * p.prep_service.as_secs() + busiest) * SLOP;
        if !w_bound.is_finite() {
            return None;
        }

        // Closed-form measured region: while `slot·SLOP + w_bound` stays
        // below the previous step's completion, every `data_ready` lands
        // before `step_done`, the `max` keeps the incumbent bit-for-bit,
        // and the step recurrence collapses to three additions. The same
        // bound checked against the *next* slot proves the resources come
        // back around caught up, closing the induction.
        // NaN-robust bound check: an incomparable (NaN) bound must
        // *decline* the fast path, never assert regularity.
        let holds = |bound: f64, limit: f64| {
            matches!(
                bound.partial_cmp(&limit),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            )
        };
        for iter in warmup_iters..total_iters {
            let slot = slot_at(&hist, iter);
            let ub = slot.as_secs() * SLOP + w_bound;
            if !holds(ub, step_done.as_secs()) {
                return None;
            }
            let done = step_done + p.compute_time + p.exposed_comm + p.opt_time;
            hist.push(done);
            if iter + 1 < total_iters && !holds(ub, slot_at(&hist, iter + 1).as_secs()) {
                return None;
            }
            step_done = done;
        }

        let measured_span = step_done - warmup_end;
        let step_time = measured_span.scale(1.0 / self.measure_iters as f64);
        // Zero accumulated stall scaled down is still (+0.0) zero —
        // bitwise what the DES loop's `measured_stall` path yields.
        let data_stall = Seconds::ZERO.scale(1.0 / self.measure_iters as f64);
        Some((step_time, data_stall))
    }

    /// Derived accounting, the numeric-integrity gate, and the final
    /// [`StepReport`] — shared verbatim by the DES loop and the fast path.
    fn finish(
        &self,
        job: &TrainingJob,
        p: &Prepared,
        step_time: Seconds,
        data_stall: Seconds,
    ) -> Result<StepReport, SimError> {
        // --- derived accounting --------------------------------------------
        // Launch gaps leave SMs idle ~40% of the time (dmon counts a GPU
        // busy whenever any kernel is resident).
        const OVERHEAD_BUSY_FRACTION: f64 = 0.25;
        let busy_per_gpu = (p.compute_time - p.launch_overhead)
            + p.launch_overhead.scale(OVERHEAD_BUSY_FRACTION)
            + p.opt_time
            + p.exposed_comm;
        let gpu_busy_fraction = (busy_per_gpu.as_secs() / step_time.as_secs()).min(1.0);

        // Polling threads spin only when there is a collective to progress.
        let poll = if p.n > 1 {
            job.host_poll_cores() * p.n as f64 * step_time.as_secs() * 2.4
        } else {
            0.0
        };
        let cpu_core_secs_per_step = job.host_fixed_core_secs()
            + job.pipeline().host_core_secs_per_batch(p.batch) * p.n as f64
            + job.host_step_core_secs() * p.n as f64
            + poll;

        let dram_footprint = job.dram_base()
            + job
                .pipeline()
                .staging_footprint(p.batch, p.depth)
                .scale(p.n as f64);

        // --- numeric-integrity gate ---------------------------------------
        // Every priced phase must come out finite and non-negative, and the
        // step itself strictly positive; anything else is a model-boundary
        // bug surfaced as a typed error naming the offending point.
        let phases = [
            ("step time", step_time),
            ("compute time", p.compute_time),
            ("optimizer time", p.opt_time),
            ("all-reduce time", p.ar_full),
            ("exposed communication", p.exposed_comm),
            ("data stall", data_stall),
        ];
        let bad_phase = phases
            .iter()
            .find(|(_, s)| !s.as_secs().is_finite() || s.as_secs() < 0.0)
            .map(|(what, s)| format!("{what} = {}s", s.as_secs()))
            .or_else(|| {
                (step_time.as_secs() <= 0.0).then(|| "non-positive step time".to_string())
            });
        if let Some(what) = bad_phase {
            return Err(SimError::NonFinite {
                context: format!(
                    "{what} simulating {} on {} ({} GPUs, {:?}, batch {})",
                    job.name(),
                    self.system.id().name(),
                    p.n,
                    job.precision(),
                    p.batch,
                ),
            });
        }

        Ok(StepReport {
            n_gpus: p.n,
            per_gpu_batch: p.batch,
            step_time,
            compute_time: p.compute_time,
            opt_time: p.opt_time,
            allreduce_time: p.ar_full,
            exposed_comm: p.exposed_comm,
            data_stall,
            gpu_busy_fraction,
            cpu_core_secs_per_step,
            h2d_bytes_per_step: p.h2d_bytes * p.n,
            wire_bytes_per_step: p.wire_per_gpu * p.n,
            comm_class: p.comm_class,
            hbm_per_gpu: p.hbm_per_gpu,
            dram_footprint,
            iteration_cost: job
                .model()
                .iteration_cost(p.batch, job.precision(), job.optimizer()),
        })
    }

    /// Convenience: run on the first `n` GPUs of the system.
    ///
    /// # Errors
    ///
    /// As [`Simulator::execute`].
    #[deprecated(note = "use `execute(&RunSpec::on_first(job, n))` instead")]
    pub fn run_on_first(&self, job: &TrainingJob, n: u32) -> Result<StepReport, SimError> {
        let gpus: Vec<u32> = (0..n).collect();
        self.run_inner(job, &gpus, false).map(|(report, _)| report)
    }
}

/// The engine under its executor-facing name: `mlperf-suite::runner`
/// schedules `Engine::execute` calls and memoizes their [`StepReport`]s.
pub type Engine<'a> = Simulator<'a>;

// The executor shares reports and specs across scoped worker threads, so
// these types must stay `Send + Sync` (and cheap to clone — `StepReport`
// is all scalars).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StepReport>();
    assert_send_sync::<RunSpec>();
    assert_send_sync::<RunOutcome>();
    assert_send_sync::<SimError>();
    assert_send_sync::<Simulator<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{ConvergenceModel, TrainingJob};
    use mlperf_data::{DatasetId, InputPipeline};
    use mlperf_hw::systems::SystemId;
    use mlperf_models::zoo::resnet::resnet50;

    fn resnet_job() -> TrainingJob {
        let pipeline = InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2));
        TrainingJob::builder(
            "resnet50",
            resnet50(),
            pipeline,
            96,
            ConvergenceModel::new(63.0, 768, 0.0),
        )
        .build()
    }

    /// Shorthand for the untraced single-report path the old `run` offered.
    fn step(sim: &Simulator<'_>, job: &TrainingJob, gpus: &[u32]) -> Result<StepReport, SimError> {
        sim.execute(&RunSpec::new(job.clone(), gpus))
            .map(|outcome| outcome.report)
    }

    fn step_on_first(sim: &Simulator<'_>, job: &TrainingJob, n: u32) -> StepReport {
        sim.execute(&RunSpec::on_first(job.clone(), n))
            .expect("run fits")
            .report
    }

    #[test]
    fn single_gpu_run_reports_sane_numbers() {
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let r = step(&sim, &resnet_job(), &[0]).unwrap();
        assert_eq!(r.n_gpus, 1);
        assert!(r.step_time.as_secs() > 0.0);
        assert_eq!(r.allreduce_time, Seconds::ZERO);
        assert_eq!(r.comm_class, None);
        assert!(r.gpu_busy_fraction > 0.3 && r.gpu_busy_fraction <= 1.0);
        assert!(r.throughput_samples_per_sec() > 0.0);
    }

    #[test]
    fn multi_gpu_steps_slower_but_more_throughput() {
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let r1 = step_on_first(&sim, &resnet_job(), 1);
        let r4 = step_on_first(&sim, &resnet_job(), 4);
        assert!(r4.step_time.as_secs() >= r1.step_time.as_secs());
        // Scaling is sub-linear (all-reduce + host loader saturation) but
        // ResNet-50 should still land well past 2.5x on NVLink.
        assert!(r4.throughput_samples_per_sec() > 2.5 * r1.throughput_samples_per_sec());
        assert_eq!(r4.comm_class, Some(P2pClass::NvLinkDirect));
        assert!(r4.wire_bytes_per_step > Bytes::ZERO);
    }

    #[test]
    fn nvlink_system_beats_upi_system_on_step_time() {
        let job = resnet_job();
        let k = SystemId::C4140K.spec();
        let t640 = SystemId::T640.spec();
        let rk = step_on_first(&Simulator::new(&k), &job, 4);
        let rt = step_on_first(&Simulator::new(&t640), &job, 4);
        assert!(
            rk.step_time.as_secs() < rt.step_time.as_secs(),
            "NVLink {} vs UPI {}",
            rk.step_time,
            rt.step_time
        );
    }

    #[test]
    fn empty_and_bogus_gpu_sets_error() {
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        assert!(matches!(
            step(&sim, &resnet_job(), &[]),
            Err(SimError::BadGpuSet(_))
        ));
        assert!(matches!(
            step(&sim, &resnet_job(), &[9]),
            Err(SimError::BadGpuSet(_))
        ));
        assert!(matches!(
            step(&sim, &resnet_job(), &[0, 0]),
            Err(SimError::BadGpuSet(_))
        ));
    }

    #[test]
    fn oversized_batch_oomse() {
        let system = SystemId::C4140K.spec(); // 16 GB HBM
        let sim = Simulator::new(&system);
        let pipeline = InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2));
        let job = TrainingJob::builder(
            "resnet50-huge",
            resnet50(),
            pipeline,
            4096,
            ConvergenceModel::new(63.0, 768, 0.0),
        )
        .build();
        assert!(matches!(
            step(&sim, &job, &[0]),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn cpu_work_scales_with_gpu_count() {
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let job = resnet_job();
        let r1 = step_on_first(&sim, &job, 1);
        let r4 = step_on_first(&sim, &job, 4);
        assert!((r4.cpu_core_secs_per_step / r1.cpu_core_secs_per_step - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fp32_step_is_slower_than_amp() {
        use mlperf_models::PrecisionPolicy;
        let system = SystemId::Dss8440.spec();
        let sim = Simulator::new(&system);
        let amp = resnet_job();
        let fp32 = amp.with_precision(PrecisionPolicy::Fp32);
        // Use a smaller batch so FP32 activations fit in 16 GB.
        let r_amp = step_on_first(&sim, &amp, 1);
        let r_fp32 = step_on_first(&sim, &fp32, 1);
        assert!(r_fp32.step_time.as_secs() > 1.4 * r_amp.step_time.as_secs());
    }

    #[test]
    fn steady_state_is_window_invariant() {
        // The measured step time must not depend on how long we measure:
        // warmup absorbs the pipeline-fill transient.
        let system = SystemId::C4140K.spec();
        let job = resnet_job();
        let short = step_on_first(&Simulator::new(&system).with_window(4, 8), &job, 4);
        let long = step_on_first(&Simulator::new(&system).with_window(16, 128), &job, 4);
        let rel =
            (short.step_time.as_secs() - long.step_time.as_secs()).abs() / long.step_time.as_secs();
        assert!(rel < 1e-6, "step time drifted {rel} with the window");
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_rejected() {
        let system = SystemId::C4140K.spec();
        let _ = Simulator::new(&system).with_window(0, 8);
    }

    #[test]
    fn dram_footprint_grows_with_gpus() {
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let job = resnet_job();
        let r1 = step_on_first(&sim, &job, 1);
        let r4 = step_on_first(&sim, &job, 4);
        assert!(r4.dram_footprint > r1.dram_footprint);
    }

    #[test]
    fn partitioned_slice_steps_slower_and_oom_gates_on_sliced_hbm() {
        use mlperf_hw::partition::{PartitionProfile, PartitionSpec};
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let whole = resnet_job();
        let sliced = whole.with_partition(Some(PartitionSpec::solo(PartitionProfile::Quarter)));
        let r_whole = step(&sim, &whole, &[0]).unwrap();
        let small_sliced = whole
            .with_per_gpu_batch(16)
            .with_partition(Some(PartitionSpec::solo(PartitionProfile::Quarter)));
        let r_sliced = step(&sim, &small_sliced, &[0]).unwrap();
        // A quarter slice at a batch that fits must price strictly slower
        // per sample than the whole device at its tuned batch.
        let whole_rate = r_whole.throughput_samples_per_sec();
        let slice_rate = r_sliced.throughput_samples_per_sec();
        assert!(
            slice_rate < whole_rate,
            "slice {slice_rate} vs whole {whole_rate}"
        );
        // The tuned batch (96) fits 16 GB but not a 4 GB quarter slice:
        // the OOM wall moves with the sliced capacity.
        assert!(matches!(
            step(&sim, &sliced, &[0]),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn colocated_tenants_slow_the_step_monotonically() {
        use mlperf_hw::partition::{PartitionProfile, PartitionSpec};
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let base = resnet_job().with_per_gpu_batch(8);
        let mut last = 0.0;
        for tenants in 1..=4 {
            let spec = PartitionSpec::new(PartitionProfile::Quarter, tenants).unwrap();
            let r = step(&sim, &base.with_partition(Some(spec)), &[0]).unwrap();
            assert!(
                r.step_time.as_secs() > last,
                "tenants={tenants}: {} not slower than {last}",
                r.step_time.as_secs()
            );
            last = r.step_time.as_secs();
        }
    }

    #[test]
    fn pascal_partition_is_a_typed_error() {
        use mlperf_hw::partition::{PartitionProfile, PartitionSpec};
        let system = SystemId::ReferenceP100.spec();
        let sim = Simulator::new(&system);
        let job = resnet_job()
            .with_per_gpu_batch(8)
            .with_partition(Some(PartitionSpec::solo(PartitionProfile::Half)));
        assert!(matches!(
            step(&sim, &job, &[0]),
            Err(SimError::Partition(
                mlperf_hw::partition::PartitionError::UnsupportedDevice { .. }
            ))
        ));
        // Preflight refuses identically (the serve layer's cheap gate).
        assert!(matches!(
            sim.preflight(&job, &[0]),
            Err(SimError::Partition(_))
        ));
    }

    #[test]
    fn partitioned_fast_path_matches_des_bitwise() {
        use mlperf_hw::partition::{PartitionProfile, PartitionSpec};
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        for profile in PartitionProfile::ALL {
            for tenants in [1, 2] {
                let spec = PartitionSpec::new(profile, tenants).unwrap();
                let job = resnet_job()
                    .with_per_gpu_batch(4)
                    .with_partition(Some(spec));
                let run = RunSpec::on_first(job, 2);
                let des = sim.execute(&run).unwrap();
                if let Some(fast) = sim.execute_fast(&run).unwrap() {
                    assert_eq!(fast.report, des.report, "{profile:?} x{tenants}");
                }
            }
        }
    }

    #[test]
    fn execute_returns_trace_only_when_requested() {
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let plain = sim
            .execute(&RunSpec::on_first(resnet_job(), 2))
            .unwrap();
        assert!(plain.trace.is_none());
        let traced = sim
            .execute(&RunSpec::on_first(resnet_job(), 2).traced())
            .unwrap();
        let trace = traced.trace.expect("trace requested");
        assert_eq!(trace.iterations.len() as u64, WARMUP_ITERS + MEASURE_ITERS);
        assert_eq!(traced.report, plain.report);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_execute() {
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let job = resnet_job();
        let via_execute = sim
            .execute(&RunSpec::on_first(job.clone(), 2))
            .unwrap()
            .report;
        assert_eq!(sim.run_on_first(&job, 2).unwrap(), via_execute);
        assert_eq!(sim.run(&job, &[0, 1]).unwrap(), via_execute);
        let (report, trace) = sim.run_traced(&job, &[0, 1]).unwrap();
        assert_eq!(report, via_execute);
        assert!(!trace.iterations.is_empty());
    }
}
