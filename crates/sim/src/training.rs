//! End-to-end training runs: steady-state step time × steps-to-quality.
//!
//! MLPerf's metric is wall-clock time to a quality target. The engine
//! supplies the steady-state step time; this module multiplies through the
//! convergence model (epochs at the effective global batch × steps per
//! epoch) to produce the training times Tables IV and Figure 5 report.

use crate::engine::{RunSpec, SimError, Simulator, StepReport};
use crate::job::TrainingJob;
use mlperf_hw::units::Seconds;
use std::fmt;

/// The outcome of one complete training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingOutcome {
    /// Wall-clock time to the quality target.
    pub total_time: Seconds,
    /// Epochs needed at the run's global batch.
    pub epochs: f64,
    /// Optimizer steps per epoch.
    pub steps_per_epoch: u64,
    /// The steady-state step accounting.
    pub step: StepReport,
}

impl TrainingOutcome {
    /// Total optimizer steps over the run.
    pub fn total_steps(&self) -> u64 {
        (self.epochs * self.steps_per_epoch as f64).ceil() as u64
    }
}

impl fmt::Display for TrainingOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} min ({:.1} epochs x {} steps @ {:.1} ms/step on {} GPUs)",
            self.total_time.as_minutes(),
            self.epochs,
            self.steps_per_epoch,
            self.step.step_time.as_secs() * 1e3,
            self.step.n_gpus,
        )
    }
}

/// Run `job` to its quality target on the given GPUs of a system.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn train(
    sim: &Simulator<'_>,
    job: &TrainingJob,
    gpus: &[u32],
) -> Result<TrainingOutcome, SimError> {
    let step = sim.execute(&RunSpec::new(job.clone(), gpus))?.report;
    Ok(outcome_from_step(job, step))
}

/// Compose a [`TrainingOutcome`] from an already-simulated step report.
///
/// Everything past the step time is closed-form (convergence model ×
/// dataset size), which is what lets the executor's memo cache share one
/// [`StepReport`] between experiments that need full training outcomes.
pub fn outcome_from_step(job: &TrainingJob, step: StepReport) -> TrainingOutcome {
    let global_batch = step.per_gpu_batch * step.n_gpus;
    let samples = job.pipeline().dataset().spec().samples();
    let steps_per_epoch = samples.div_ceil(global_batch);
    let epochs = job.convergence().epochs_at(global_batch);
    let total_steps = epochs * steps_per_epoch as f64;
    let total_time = step.step_time.scale(total_steps);
    TrainingOutcome {
        total_time,
        epochs,
        steps_per_epoch,
        step,
    }
}

/// Run `job` on the first `n` GPUs.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn train_on_first(
    sim: &Simulator<'_>,
    job: &TrainingJob,
    n: u32,
) -> Result<TrainingOutcome, SimError> {
    let gpus: Vec<u32> = (0..n).collect();
    train(sim, job, &gpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ConvergenceModel;
    use mlperf_data::{DatasetId, InputPipeline};
    use mlperf_hw::systems::SystemId;
    use mlperf_hw::units::Bytes;
    use mlperf_models::zoo::ncf::ncf;

    fn ncf_job() -> TrainingJob {
        let pipeline = InputPipeline::new(DatasetId::MovieLens20M, Bytes::new(16));
        TrainingJob::builder(
            "ncf",
            ncf(),
            pipeline,
            1 << 20,
            ConvergenceModel::new(13.0, 1 << 20, 0.0),
        )
        .max_global_batch(1 << 20)
        .optimizer(mlperf_models::Optimizer::Adam)
        .build()
    }

    #[test]
    fn outcome_composes_epochs_and_steps() {
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let out = train_on_first(&sim, &ncf_job(), 1).unwrap();
        assert!(out.total_time.as_secs() > 0.0);
        assert_eq!(
            out.steps_per_epoch,
            DatasetId::MovieLens20M
                .spec()
                .samples()
                .div_ceil(out.step.per_gpu_batch)
        );
        assert!((out.epochs - 13.0).abs() < 1e-9);
        assert!(out.total_steps() >= out.steps_per_epoch * 13);
    }

    #[test]
    fn capped_job_scales_poorly() {
        // NCF's global batch cap: 4 GPUs do not get 4x the throughput.
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let t1 = train_on_first(&sim, &ncf_job(), 1).unwrap().total_time;
        let t4 = train_on_first(&sim, &ncf_job(), 4).unwrap().total_time;
        let speedup = t1.as_secs() / t4.as_secs();
        assert!(speedup < 3.0, "capped NCF sped up {speedup}x");
    }

    #[test]
    fn display_mentions_minutes_and_gpus() {
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let out = train_on_first(&sim, &ncf_job(), 2).unwrap();
        let s = out.to_string();
        assert!(s.contains("min") && s.contains("2 GPUs"));
    }
}
