//! Roofline-limited kernel timing.
//!
//! One training step's device time is priced with the roofline model the
//! paper uses in Fig. 2: compute time (SIMT FLOPs at the FP32 sustained rate
//! plus Tensor-Core FLOPs at the TC sustained rate) races against memory
//! time (HBM traffic at sustained bandwidth); the step takes the larger,
//! with partial overlap between the two captured by the efficiency factors.

use mlperf_hw::gpu::{GpuSpec, Precision};
use mlperf_hw::units::Seconds;
use mlperf_models::IterationCost;

/// Sustained-efficiency knobs for one workload on one GPU.
///
/// These are the simulator's calibration surface: real kernels reach only a
/// fraction of the empirical ceilings (kernel-launch gaps, tail effects,
/// non-ideal tiling). Values are fractions of the *empirical* (ERT) ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Fraction of the FP32 ceiling SIMT kernels sustain.
    pub simt: f64,
    /// Fraction of the Tensor-Core ceiling TC kernels sustain.
    pub tensor: f64,
    /// Fraction of the HBM ceiling the access streams sustain.
    pub memory: f64,
}

impl Efficiency {
    /// Construct, validating each factor lies in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if any factor is outside `(0, 1]`.
    pub fn new(simt: f64, tensor: f64, memory: f64) -> Self {
        for (name, v) in [("simt", simt), ("tensor", tensor), ("memory", memory)] {
            assert!(
                v > 0.0 && v <= 1.0 && v.is_finite(),
                "{name} efficiency must be in (0, 1], got {v}"
            );
        }
        Efficiency {
            simt,
            tensor,
            memory,
        }
    }

    /// A well-tuned dense workload (cuDNN-style kernels).
    pub fn tuned() -> Self {
        Efficiency::new(0.70, 0.55, 0.75)
    }

    /// A workload with irregular kernels (detection heads, RNN step chains).
    pub fn irregular() -> Self {
        Efficiency::new(0.45, 0.35, 0.60)
    }
}

impl Default for Efficiency {
    fn default() -> Self {
        Efficiency::tuned()
    }
}

/// Times iteration costs on a specific GPU at given sustained efficiencies.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTimer {
    gpu: GpuSpec,
    eff: Efficiency,
}

impl KernelTimer {
    /// Build a timer for one GPU model.
    pub fn new(gpu: GpuSpec, eff: Efficiency) -> Self {
        KernelTimer { gpu, eff }
    }

    /// The GPU being timed against.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// The efficiency knobs in force.
    pub fn efficiency(&self) -> Efficiency {
        self.eff
    }

    /// Pure compute time of an iteration (both pipelines, no memory limit).
    pub fn compute_time(&self, cost: &IterationCost) -> Seconds {
        let simt_rate = self
            .gpu
            .empirical_flop_rate(Precision::Single)
            .scale(self.eff.simt);
        let tc_rate = self
            .gpu
            .empirical_flop_rate(Precision::TensorCore)
            .scale(self.eff.tensor);
        cost.simt_flops / simt_rate + cost.tensor_flops / tc_rate
    }

    /// Pure memory time of an iteration (all HBM traffic, no compute limit).
    pub fn memory_time(&self, cost: &IterationCost) -> Seconds {
        let bw = self.gpu.empirical_hbm_bandwidth().scale(self.eff.memory);
        cost.mem_bytes / bw
    }

    /// Roofline step time: the slower of compute and memory, plus a fraction
    /// of the faster one that real kernel sequences fail to hide.
    pub fn step_time(&self, cost: &IterationCost) -> Seconds {
        /// Fraction of the minor axis that leaks past overlap: kernel
        /// boundaries serialize compute-heavy and memory-heavy phases.
        const EXPOSED_MINOR_FRACTION: f64 = 0.25;
        let c = self.compute_time(cost);
        let m = self.memory_time(cost);
        let (major, minor) = if c >= m { (c, m) } else { (m, c) };
        major + minor.scale(EXPOSED_MINOR_FRACTION)
    }

    /// The achieved FLOP rate implied by [`KernelTimer::step_time`] —
    /// what `nvprof` would report as sustained throughput.
    pub fn achieved_flop_rate(&self, cost: &IterationCost) -> mlperf_hw::FlopRate {
        cost.total_flops() / self.step_time(cost)
    }

    /// Duration of a single operator's kernels (forward + backward) at the
    /// given batch and policy: each op is roofline-priced on its own, the
    /// way `nvprof` attributes time per kernel.
    pub fn op_time(
        &self,
        op: &mlperf_models::Op,
        batch: u64,
        policy: mlperf_models::PrecisionPolicy,
    ) -> Seconds {
        use mlperf_hw::units::{Bytes, Flops};
        let flops = op.fwd_flops(batch).as_u64() + op.bwd_flops(batch).as_u64();
        let on_tensor = policy == mlperf_models::PrecisionPolicy::Amp && op.tensor_core_eligible();
        let act_elems = op.fwd_act_elems(batch) + op.bwd_act_elems(batch);
        let bytes = (act_elems as f64
            * op.fused_traffic_factor()
            * policy.activation_bytes(op.tensor_core_eligible()) as f64)
            .round() as u64
            + 2 * op.params() * policy.activation_bytes(op.tensor_core_eligible());
        let cost = IterationCost {
            simt_flops: if on_tensor {
                Flops::ZERO
            } else {
                Flops::new(flops)
            },
            tensor_flops: if on_tensor {
                Flops::new(flops)
            } else {
                Flops::ZERO
            },
            mem_bytes: Bytes::new(bytes),
            gradient_bytes: Bytes::ZERO,
        };
        self.step_time(&cost)
    }

    /// Per-operator kernel durations for a whole graph, in execution order:
    /// `(op name, duration)` — the data behind a duration-sorted "top
    /// kernels" table.
    pub fn op_times(
        &self,
        graph: &mlperf_models::ModelGraph,
        batch: u64,
        policy: mlperf_models::PrecisionPolicy,
    ) -> Vec<(String, Seconds)> {
        graph
            .ops()
            .iter()
            .map(|op| (op.name().to_string(), self.op_time(op, batch, policy)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_hw::gpu::GpuModel;
    use mlperf_hw::units::{Bytes, Flops};

    fn cost(simt_gf: f64, tc_gf: f64, mem_mib: u64) -> IterationCost {
        IterationCost {
            simt_flops: Flops::from_gflops(simt_gf),
            tensor_flops: Flops::from_gflops(tc_gf),
            mem_bytes: Bytes::from_mib(mem_mib),
            gradient_bytes: Bytes::ZERO,
        }
    }

    fn v100_timer() -> KernelTimer {
        KernelTimer::new(
            GpuModel::TeslaV100Sxm2_16.spec(),
            Efficiency::new(1.0, 1.0, 1.0),
        )
    }

    #[test]
    fn compute_bound_workload_tracks_flops() {
        let t = v100_timer();
        // Huge FLOPs, tiny memory.
        let c = cost(14_600.0, 0.0, 1);
        let step = t.step_time(&c);
        // 14.6 TFLOP at ~14.6 TFLOP/s empirical FP32 ≈ 1 s.
        assert!((step.as_secs() - 1.0).abs() < 0.05, "step = {step}");
    }

    #[test]
    fn memory_bound_workload_tracks_bytes() {
        let t = v100_timer();
        // Empirical HBM bandwidth is 828 GB/s; 828 MiB ≈ 1.05 ms.
        let c = cost(1.0, 0.0, 828);
        let step_ms = t.step_time(&c).as_secs() * 1e3;
        assert!((step_ms - 1.05).abs() < 0.1, "step = {step_ms} ms");
    }

    #[test]
    fn tensor_cores_accelerate_eligible_flops() {
        let t = v100_timer();
        let simt_only = cost(10_000.0, 0.0, 1);
        let tc_only = cost(0.0, 10_000.0, 1);
        assert!(t.step_time(&tc_only).as_secs() < t.step_time(&simt_only).as_secs() / 4.0);
    }

    #[test]
    fn efficiency_scales_time_inversely() {
        let gpu = GpuModel::TeslaV100Sxm2_16.spec();
        let fast = KernelTimer::new(gpu.clone(), Efficiency::new(1.0, 1.0, 1.0));
        let slow = KernelTimer::new(gpu, Efficiency::new(0.5, 0.5, 0.5));
        let c = cost(5_000.0, 5_000.0, 100);
        let ratio = slow.step_time(&c).as_secs() / fast.step_time(&c).as_secs();
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn p100_is_slower_than_v100_and_lacks_tc_speedup() {
        let eff = Efficiency::tuned();
        let v100 = KernelTimer::new(GpuModel::TeslaV100Sxm2_16.spec(), eff);
        let p100 = KernelTimer::new(GpuModel::TeslaP100Pcie16.spec(), eff);
        let c = cost(2_000.0, 8_000.0, 200);
        assert!(p100.step_time(&c).as_secs() > 3.0 * v100.step_time(&c).as_secs());
    }

    #[test]
    fn achieved_rate_below_peak() {
        let t = v100_timer();
        let c = cost(5_000.0, 0.0, 500);
        let achieved = t.achieved_flop_rate(&c);
        assert!(achieved.as_tflops() < 15.7);
        assert!(achieved.as_tflops() > 0.0);
    }

    #[test]
    #[should_panic(expected = "efficiency must be in")]
    fn zero_efficiency_rejected() {
        let _ = Efficiency::new(0.0, 0.5, 0.5);
    }

    #[test]
    fn presets_are_ordered() {
        let t = Efficiency::tuned();
        let i = Efficiency::irregular();
        assert!(t.simt > i.simt && t.tensor > i.tensor && t.memory > i.memory);
    }

    #[test]
    fn per_op_times_sum_near_the_aggregate() {
        use mlperf_models::zoo::resnet::resnet18_cifar;
        use mlperf_models::PrecisionPolicy;
        let g = resnet18_cifar();
        let timer = KernelTimer::new(GpuModel::TeslaV100Sxm2_16.spec(), Efficiency::tuned());
        let per_op: f64 = timer
            .op_times(&g, 128, PrecisionPolicy::Amp)
            .iter()
            .map(|(_, t)| t.as_secs())
            .sum();
        let aggregate = timer
            .step_time(&g.pass_cost(128, PrecisionPolicy::Amp))
            .as_secs();
        // Per-op pricing loses cross-op compute/memory overlap, so it sits
        // above the aggregate, but within ~1.6x for a conv-dominated net.
        assert!(per_op >= aggregate * 0.99, "per-op {per_op} vs {aggregate}");
        assert!(per_op <= aggregate * 1.6, "per-op {per_op} vs {aggregate}");
    }

    #[test]
    fn conv_kernels_dominate_resnet_time() {
        use mlperf_models::zoo::resnet::resnet18_cifar;
        use mlperf_models::PrecisionPolicy;
        let g = resnet18_cifar();
        let timer = KernelTimer::new(GpuModel::TeslaV100Sxm2_16.spec(), Efficiency::tuned());
        let mut times = timer.op_times(&g, 128, PrecisionPolicy::Amp);
        times.sort_by(|a, b| b.1.as_secs().partial_cmp(&a.1.as_secs()).expect("finite"));
        assert!(
            times[0].0.contains("conv"),
            "slowest kernel: {}",
            times[0].0
        );
    }
}
