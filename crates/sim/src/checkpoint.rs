//! Checkpoint/restart cost model.
//!
//! MLPerf Training measures healthy runs, but at cluster scale the
//! expected time-to-train is governed by how often state is saved and how
//! much work a failure rolls back. This module prices a checkpoint of one
//! [`TrainingJob`] through the `mlperf-data` storage model (FP32 master
//! weights + optimizer state, written sequentially) and provides the
//! Young/Daly analysis the `fault_study` experiment sweeps:
//!
//! * [`failure_free_overhead`] — pure checkpoint tax, monotone in
//!   checkpoint *frequency*;
//! * [`expected_runtime`] — Daly's complete model for the expected
//!   wall-clock of `work` under exponential failures with MTBF `M`,
//!   checkpoint write cost `C`, restart cost `R`, and interval `τ`:
//!   `M·e^{R/M}·(e^{(τ+C)/M} − 1)·(W/τ)` — exact for memoryless failures
//!   and quasi-convex in `τ`;
//! * [`daly_interval`] — the near-optimal interval
//!   `√(2CM)·[1 + ⅓·√(C/2M) + (C/2M)/9] − C` (Daly 2006), clamped to `M`
//!   when `C ≥ 2M`.

use crate::engine::StepReport;
use crate::job::TrainingJob;
use mlperf_data::storage::StorageDevice;
use mlperf_hw::units::{Bytes, Seconds};

/// How a run checkpoints: where state goes, how often, and what a restart
/// costs beyond re-reading the state.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpec {
    /// Target wall-clock between checkpoints (quantized to step
    /// boundaries by the replay).
    pub interval: Seconds,
    /// Device the checkpoint is written to and restored from.
    pub device: StorageDevice,
    /// Fixed relaunch latency on restart (process spawn, NCCL re-init,
    /// pipeline warmup) — paid before the state read starts.
    pub relaunch: Seconds,
}

impl CheckpointSpec {
    /// A spec with the default 30 s relaunch latency.
    pub fn new(interval: Seconds, device: StorageDevice) -> Self {
        assert!(
            interval.as_secs() > 0.0,
            "checkpoint interval must be positive"
        );
        CheckpointSpec {
            interval,
            device,
            relaunch: Seconds::new(30.0),
        }
    }

    /// Override the relaunch latency.
    #[must_use]
    pub fn with_relaunch(mut self, relaunch: Seconds) -> Self {
        self.relaunch = relaunch;
        self
    }

    /// Bytes one checkpoint of `job` holds: FP32 master weights plus the
    /// optimizer's resident state (both kept in FP32 even under AMP).
    pub fn bytes(&self, job: &TrainingJob) -> Bytes {
        let params = job.model().params();
        Bytes::new(params * 4) + job.optimizer().state_bytes(params)
    }

    /// Wall-clock cost `C` of one checkpoint write (sequential dump to the
    /// device; training pauses — the synchronous-checkpoint model).
    pub fn write_cost(&self, job: &TrainingJob) -> Seconds {
        self.bytes(job) / self.device.sequential_write()
    }

    /// Wall-clock cost `R` of one restart: relaunch latency plus reading
    /// the checkpoint back at the device's sequential read rate.
    pub fn restart_cost(&self, job: &TrainingJob) -> Seconds {
        self.relaunch + self.bytes(job) / self.device.sequential_read()
    }

    /// The checkpoint cadence in optimizer steps, given the steady-state
    /// step time — at least 1.
    pub fn interval_steps(&self, step: &StepReport) -> u64 {
        ((self.interval.as_secs() / step.step_time.as_secs()).round() as u64).max(1)
    }
}

/// The checkpoint tax with no failures at all: one write of cost `c` per
/// interval `tau` over `work` seconds of useful compute. Strictly
/// increasing in checkpoint frequency (`1/tau`).
///
/// # Panics
///
/// Panics unless `tau` is positive.
pub fn failure_free_overhead(work: Seconds, tau: Seconds, c: Seconds) -> Seconds {
    assert!(tau.as_secs() > 0.0, "interval must be positive");
    c.scale(work.as_secs() / tau.as_secs())
}

/// Daly's complete model: expected wall-clock to finish `work` seconds of
/// useful compute, checkpointing every `tau` at cost `c`, restarting at
/// cost `r`, under exponential failures with mean time between failures
/// `mtbf`. Exact for memoryless failures; quasi-convex in `tau`.
///
/// # Panics
///
/// Panics unless `tau` and `mtbf` are positive.
pub fn expected_runtime(work: Seconds, tau: Seconds, c: Seconds, r: Seconds, mtbf: Seconds) -> Seconds {
    assert!(tau.as_secs() > 0.0, "interval must be positive");
    assert!(mtbf.as_secs() > 0.0, "MTBF must be positive");
    let m = mtbf.as_secs();
    let segments = work.as_secs() / tau.as_secs();
    let per_segment = m * (r.as_secs() / m).exp() * (((tau + c).as_secs() / m).exp() - 1.0);
    Seconds::new(per_segment * segments)
}

/// Daly's higher-order optimal checkpoint interval for write cost `c` and
/// MTBF `mtbf`: `√(2cM)·[1 + ⅓√(c/2M) + (c/2M)/9] − c`, clamped to `M`
/// when `c ≥ 2M` (checkpointing costs more than the expected failure-free
/// window — write once per MTBF).
///
/// # Panics
///
/// Panics unless both costs are positive.
pub fn daly_interval(c: Seconds, mtbf: Seconds) -> Seconds {
    assert!(c.as_secs() > 0.0, "write cost must be positive");
    assert!(mtbf.as_secs() > 0.0, "MTBF must be positive");
    let (c, m) = (c.as_secs(), mtbf.as_secs());
    if c >= 2.0 * m {
        return Seconds::new(m);
    }
    let x = c / (2.0 * m);
    Seconds::new((2.0 * c * m).sqrt() * (1.0 + x.sqrt() / 3.0 + x / 9.0) - c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RunSpec, Simulator};
    use crate::job::ConvergenceModel;
    use mlperf_data::{DatasetId, InputPipeline};
    use mlperf_hw::systems::SystemId;
    use mlperf_models::zoo::resnet::resnet50;

    fn resnet_job() -> TrainingJob {
        let pipeline = InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2));
        TrainingJob::builder(
            "resnet50",
            resnet50(),
            pipeline,
            96,
            ConvergenceModel::new(63.0, 768, 0.0),
        )
        .build()
    }

    #[test]
    fn checkpoint_bytes_cover_weights_and_state() {
        let job = resnet_job();
        let spec = CheckpointSpec::new(Seconds::from_minutes(10.0), StorageDevice::NvmeSsd);
        let params = job.model().params();
        // SGD+momentum: 4 B master + 4 B momentum per parameter.
        assert_eq!(spec.bytes(&job), Bytes::new(params * 8));
        assert!(spec.write_cost(&job).as_secs() > 0.0);
        // Restart pays relaunch + read; read is faster than write here.
        assert!(spec.restart_cost(&job) > spec.relaunch);
    }

    #[test]
    fn slower_devices_write_longer() {
        let job = resnet_job();
        let cost = |d| {
            CheckpointSpec::new(Seconds::from_minutes(10.0), d)
                .write_cost(&job)
                .as_secs()
        };
        assert!(cost(StorageDevice::Hdd) > cost(StorageDevice::SataSsd));
        assert!(cost(StorageDevice::SataSsd) > cost(StorageDevice::NvmeSsd));
    }

    #[test]
    fn interval_steps_quantizes_and_floors_at_one() {
        let system = SystemId::Dss8440.spec();
        let report = Simulator::new(&system)
            .execute(&RunSpec::on_first(resnet_job(), 4))
            .unwrap()
            .report;
        let spec = CheckpointSpec::new(Seconds::from_minutes(5.0), StorageDevice::NvmeSsd);
        let steps = spec.interval_steps(&report);
        assert!(steps >= 1);
        let quantized = report.step_time.scale(steps as f64);
        let rel = (quantized.as_secs() - 300.0).abs() / 300.0;
        assert!(rel < 0.01, "quantized interval off by {rel}");
        // An interval below one step still checkpoints every step, not 0.
        let tiny = CheckpointSpec::new(Seconds::new(1e-6), StorageDevice::NvmeSsd);
        assert_eq!(tiny.interval_steps(&report), 1);
    }

    #[test]
    fn daly_interval_matches_young_to_first_order() {
        // For c << M the higher-order terms vanish: tau ~ sqrt(2cM).
        let c = Seconds::new(10.0);
        let m = Seconds::from_hours(24.0);
        let tau = daly_interval(c, m);
        let young = (2.0 * c.as_secs() * m.as_secs()).sqrt();
        let rel = (tau.as_secs() - young).abs() / young;
        assert!(rel < 0.02, "daly {} vs young {young}", tau.as_secs());
    }

    #[test]
    fn daly_interval_clamps_when_checkpoints_dominate() {
        let tau = daly_interval(Seconds::new(100.0), Seconds::new(30.0));
        assert_eq!(tau, Seconds::new(30.0));
    }

    #[test]
    fn expected_runtime_exceeds_failure_free_work() {
        let work = Seconds::from_hours(10.0);
        let t = expected_runtime(
            work,
            Seconds::from_minutes(30.0),
            Seconds::new(20.0),
            Seconds::new(60.0),
            Seconds::from_hours(8.0),
        );
        assert!(t > work);
        // ...but not absurdly: a healthy-ish cluster loses < 40%.
        assert!(t.as_secs() < 1.4 * work.as_secs(), "{}", t.as_secs());
    }

    #[test]
    fn daly_interval_beats_extreme_intervals() {
        let work = Seconds::from_hours(10.0);
        let (c, r, m) = (
            Seconds::new(20.0),
            Seconds::new(60.0),
            Seconds::from_hours(4.0),
        );
        let at = |tau| expected_runtime(work, tau, c, r, m).as_secs();
        let opt = at(daly_interval(c, m));
        assert!(opt < at(Seconds::from_minutes(1.0)), "too-frequent wins?");
        assert!(opt < at(Seconds::from_hours(8.0)), "too-rare wins?");
    }
}
