//! Execution traces: the per-iteration phase timeline of a simulated run.
//!
//! The engine's [`StepReport`](crate::StepReport) is a steady-state summary;
//! a [`RunTrace`] keeps the raw schedule — for every measured iteration and
//! every GPU, when its batch was staged, when compute ran, and when the
//! synchronized step completed. The high-fidelity `dmon`/`dstat` loggers in
//! `mlperf-telemetry` replay these instead of reconstructing phases
//! analytically, and the `training_timeline` example renders them.

use mlperf_hw::units::Seconds;
use std::fmt;

/// One GPU's phases within one iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPhases {
    /// When the host finished preprocessing this GPU's batch.
    pub prep_done: Seconds,
    /// When the H2D copy delivered the batch to device memory.
    pub data_ready: Seconds,
    /// When forward+backward began (after data and the previous step).
    pub compute_start: Seconds,
    /// When forward+backward finished.
    pub compute_done: Seconds,
}

impl GpuPhases {
    /// Time this GPU sat idle waiting for input this iteration.
    pub fn stall(&self, prev_step_done: Seconds) -> Seconds {
        if self.compute_start.as_secs() > prev_step_done.as_secs() {
            self.compute_start - prev_step_done
        } else {
            Seconds::ZERO
        }
    }
}

/// One synchronized training iteration across all GPUs.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Iteration ordinal (includes warmup iterations).
    pub iter: u64,
    /// Per-GPU phases, indexed like the run's GPU list.
    pub gpus: Vec<GpuPhases>,
    /// When the slowest GPU finished compute (the all-reduce sync point).
    pub sync: Seconds,
    /// When the exposed all-reduce finished.
    pub allreduce_done: Seconds,
    /// When the optimizer step finished (the iteration boundary).
    pub step_done: Seconds,
}

impl IterationRecord {
    /// Wall-clock span of this iteration, measured from the previous
    /// iteration's completion.
    pub fn span(&self, prev_step_done: Seconds) -> Seconds {
        self.step_done - prev_step_done
    }
}

/// The complete timeline of a simulated run window.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// All iterations, warmup included, in order.
    pub iterations: Vec<IterationRecord>,
    /// How many leading iterations are pipeline warmup.
    pub warmup: u64,
}

impl RunTrace {
    /// The measured (post-warmup) iterations.
    pub fn measured(&self) -> &[IterationRecord] {
        &self.iterations[self.warmup as usize..]
    }

    /// Total simulated time covered by the trace.
    pub fn end(&self) -> Seconds {
        self.iterations
            .last()
            .map(|r| r.step_done)
            .unwrap_or(Seconds::ZERO)
    }

    /// Whether a GPU had compute resident at absolute time `t`
    /// (compute phase, exposed collective, or optimizer — the window dmon
    /// counts as busy).
    pub fn gpu_busy_at(&self, gpu: usize, t: Seconds) -> bool {
        let tv = t.as_secs();
        self.iterations.iter().any(|rec| {
            rec.gpus.get(gpu).is_some_and(|p| {
                // Busy from compute start through the step boundary
                // (collective + optimizer keep kernels resident).
                tv >= p.compute_start.as_secs() && tv < rec.step_done.as_secs()
            })
        })
    }

    /// The iteration in flight at time `t`, if any.
    pub fn iteration_at(&self, t: Seconds) -> Option<&IterationRecord> {
        let tv = t.as_secs();
        let mut prev_end = 0.0;
        for rec in &self.iterations {
            if tv >= prev_end && tv < rec.step_done.as_secs() {
                return Some(rec);
            }
            prev_end = rec.step_done.as_secs();
        }
        None
    }
}

impl fmt::Display for RunTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iterations ({} warmup) over {}",
            self.iterations.len(),
            self.warmup,
            self.end()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_iter_trace() -> RunTrace {
        let mk = |base: f64| IterationRecord {
            iter: 0,
            gpus: vec![GpuPhases {
                prep_done: Seconds::new(base + 0.01),
                data_ready: Seconds::new(base + 0.02),
                compute_start: Seconds::new(base + 0.02),
                compute_done: Seconds::new(base + 0.10),
            }],
            sync: Seconds::new(base + 0.10),
            allreduce_done: Seconds::new(base + 0.11),
            step_done: Seconds::new(base + 0.12),
        };
        RunTrace {
            iterations: vec![mk(0.0), mk(0.12)],
            warmup: 1,
        }
    }

    #[test]
    fn measured_excludes_warmup() {
        let t = two_iter_trace();
        assert_eq!(t.measured().len(), 1);
        assert_eq!(t.end(), Seconds::new(0.24));
    }

    #[test]
    fn busy_windows_are_half_open() {
        let t = two_iter_trace();
        assert!(!t.gpu_busy_at(0, Seconds::new(0.01))); // staging
        assert!(t.gpu_busy_at(0, Seconds::new(0.05))); // compute
        assert!(t.gpu_busy_at(0, Seconds::new(0.115))); // optimizer
        assert!(!t.gpu_busy_at(0, Seconds::new(0.121))); // next staging
        assert!(!t.gpu_busy_at(1, Seconds::new(0.05))); // no such GPU
    }

    #[test]
    fn iteration_lookup() {
        let t = two_iter_trace();
        assert_eq!(
            t.iteration_at(Seconds::new(0.05)).unwrap().step_done,
            Seconds::new(0.12)
        );
        assert_eq!(
            t.iteration_at(Seconds::new(0.13)).unwrap().step_done,
            Seconds::new(0.24)
        );
        assert!(t.iteration_at(Seconds::new(0.25)).is_none());
    }

    #[test]
    fn stall_is_positive_only_when_waiting() {
        let p = GpuPhases {
            prep_done: Seconds::new(0.5),
            data_ready: Seconds::new(0.6),
            compute_start: Seconds::new(0.6),
            compute_done: Seconds::new(1.0),
        };
        assert!((p.stall(Seconds::new(0.2)).as_secs() - 0.4).abs() < 1e-12);
        assert_eq!(p.stall(Seconds::new(0.8)), Seconds::ZERO);
    }
}
