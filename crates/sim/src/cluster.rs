//! An event-driven multi-GPU cluster executing a stream of training jobs.
//!
//! §IV-D closes with: "system administrators associated with super
//! computing clusters might be interested in finding an effective
//! algorithm to schedule various machine learning training jobs". This
//! module provides that substrate as an extension: jobs (with measured
//! per-width durations) *arrive over time*, a pluggable
//! [`SchedulingPolicy`] decides placements, and the cluster executes
//! everything on the [`EventQueue`] — non-preemptive, work-conserving at
//! the policy's discretion.
//!
//! # Examples
//!
//! ```
//! use mlperf_sim::cluster::{Cluster, ClusterJobSpec, GreedyBestFinish, Submission};
//! use mlperf_hw::Seconds;
//!
//! let jobs = vec![
//!     Submission::at_start(ClusterJobSpec::new("a", [(1, 100.0), (2, 55.0), (4, 30.0)])),
//!     Submission::at_start(ClusterJobSpec::new("b", [(1, 80.0), (2, 70.0), (4, 65.0)])),
//! ];
//! let trace = Cluster::new(4).run(jobs, &mut GreedyBestFinish);
//! assert!(trace.makespan > Seconds::ZERO);
//! assert_eq!(trace.completions.len(), 2);
//! ```

use crate::des::EventQueue;
use mlperf_hw::units::Seconds;
use std::collections::BTreeMap;
use std::fmt;

/// A job the cluster can run: a name plus its measured duration at every
/// feasible GPU width (minutes, as Table IV reports them).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterJobSpec {
    name: String,
    durations: BTreeMap<u64, f64>,
}

impl ClusterJobSpec {
    /// Build from `(width, minutes)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on an empty set, zero widths, or non-positive durations.
    pub fn new(name: impl Into<String>, durations: impl IntoIterator<Item = (u64, f64)>) -> Self {
        let durations: BTreeMap<u64, f64> = durations.into_iter().collect();
        assert!(!durations.is_empty(), "job needs at least one width");
        for (&w, &d) in &durations {
            assert!(w > 0, "width must be positive");
            assert!(
                d.is_finite() && d > 0.0,
                "duration must be finite and positive"
            );
        }
        ClusterJobSpec {
            name: name.into(),
            durations,
        }
    }

    /// The job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Duration in minutes at a width, if feasible.
    pub fn minutes_at(&self, width: u64) -> Option<f64> {
        self.durations.get(&width).copied()
    }

    /// Feasible widths, ascending.
    pub fn widths(&self) -> impl Iterator<Item = u64> + '_ {
        self.durations.keys().copied()
    }
}

/// The slot geometry of a partitioned pool: `gpus` devices each carved
/// into `slices_per_gpu` MIG-style slices.
///
/// The cluster's capacity unit generalizes from whole GPUs to *slots*:
/// width 1 in a [`ClusterJobSpec`] duration map is one fractional slice,
/// width `slices_per_gpu` a whole device, and wider placements span
/// devices. Everything else — policies, arrivals, node failures, the
/// elastic preemption machinery — is unchanged, which is exactly the
/// point: "requeue at a narrower width" becomes "requeue at a smaller
/// partition" with no new event machinery. The per-slot durations
/// themselves come from the engine pricing jobs on
/// [`PartitionSpec`](mlperf_hw::partition::PartitionSpec) slices, so the
/// slowdown of running fractional is the priced one, not a guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionLayout {
    gpus: u64,
    slices_per_gpu: u64,
}

impl PartitionLayout {
    /// A pool of `gpus` devices each split into `slices_per_gpu` slices.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(gpus: u64, slices_per_gpu: u64) -> Self {
        assert!(gpus > 0, "pool needs at least one GPU");
        assert!(slices_per_gpu > 0, "a device has at least one slice");
        PartitionLayout {
            gpus,
            slices_per_gpu,
        }
    }

    /// An unpartitioned pool (one slot per device) — the classic cluster.
    pub fn whole_devices(gpus: u64) -> Self {
        PartitionLayout::new(gpus, 1)
    }

    /// Devices in the pool.
    pub fn gpus(&self) -> u64 {
        self.gpus
    }

    /// Slices each device is carved into.
    pub fn slices_per_gpu(&self) -> u64 {
        self.slices_per_gpu
    }

    /// Total schedulable slots (`gpus × slices_per_gpu`).
    pub fn slots(&self) -> u64 {
        self.gpus * self.slices_per_gpu
    }

    /// Slots a placement spanning `devices` whole GPUs occupies.
    pub fn device_slots(&self, devices: u64) -> u64 {
        devices * self.slices_per_gpu
    }
}

/// A job plus its arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// The job.
    pub job: ClusterJobSpec,
    /// When it enters the queue.
    pub arrival: Seconds,
}

impl Submission {
    /// A job present from time zero (offline batch).
    pub fn at_start(job: ClusterJobSpec) -> Self {
        Submission {
            job,
            arrival: Seconds::ZERO,
        }
    }

    /// A job arriving after `minutes`.
    pub fn after_minutes(job: ClusterJobSpec, minutes: f64) -> Self {
        Submission {
            job,
            arrival: Seconds::from_minutes(minutes),
        }
    }
}

/// A queued job as the policy sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJob<'a> {
    /// Index into the submission list (stable job identity).
    pub id: usize,
    /// The job description.
    pub job: &'a ClusterJobSpec,
    /// When it arrived.
    pub arrival: Seconds,
}

/// A placement decision: run pending job `id` at `width` GPUs, now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Which pending job to start.
    pub id: usize,
    /// How many GPUs to give it.
    pub width: u64,
}

/// A scheduling policy: called whenever GPUs free up, jobs arrive, or
/// nodes fail; returns the next job to start immediately, or `None` to
/// wait.
///
/// The cluster re-invokes the policy after applying each decision, so a
/// policy can start several jobs at one instant. `capacity` is the *live*
/// pool size — node failures shrink it mid-run, which is how every policy
/// sees an elastic cluster (a preempted job reappears in `pending` and
/// can be re-placed at a narrower width).
pub trait SchedulingPolicy {
    /// Pick a job to start now on `idle` of the `capacity` surviving
    /// GPUs, or `None` to leave them idle until the next event. Returned
    /// decisions must be feasible (`width <= idle` and a measured width
    /// of the chosen job).
    fn select(
        &mut self,
        pending: &[PendingJob<'_>],
        idle: u64,
        capacity: u64,
        now: Seconds,
    ) -> Option<Decision>;

    /// The policy's display name.
    fn name(&self) -> &'static str;
}

/// The paper's naive baseline, online: wait until the *whole* surviving
/// cluster is idle, then run the oldest job at its widest feasible width.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveWidest;

impl SchedulingPolicy for NaiveWidest {
    fn select(
        &mut self,
        pending: &[PendingJob<'_>],
        idle: u64,
        capacity: u64,
        _now: Seconds,
    ) -> Option<Decision> {
        if idle < capacity {
            return None; // exclusive use: wait for the full pool
        }
        let oldest = pending.iter().min_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .expect("arrivals are finite")
                .then(a.id.cmp(&b.id))
        })?;
        let width = oldest.job.widths().filter(|&w| w <= idle).max()?;
        Some(Decision {
            id: oldest.id,
            width,
        })
    }

    fn name(&self) -> &'static str {
        "naive-widest"
    }
}

/// Greedy best-finish: among queued jobs and feasible widths on the idle
/// GPUs, start the (job, width) whose *finish time* is earliest, breaking
/// ties toward narrower placements (leaving room for others).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBestFinish;

impl SchedulingPolicy for GreedyBestFinish {
    fn select(
        &mut self,
        pending: &[PendingJob<'_>],
        idle: u64,
        _capacity: u64,
        _now: Seconds,
    ) -> Option<Decision> {
        let mut best: Option<(f64, u64, usize)> = None; // (minutes, width, id)
        for p in pending {
            for w in p.job.widths().filter(|&w| w <= idle) {
                let d = p.job.minutes_at(w).expect("width from map");
                let cand = (d, w, p.id);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        best.map(|(_, width, id)| Decision { id, width })
    }

    fn name(&self) -> &'static str {
        "greedy-best-finish"
    }
}

/// Area-efficient packing: start the (job, width) minimizing GPU-minutes
/// *area* (width × duration) — i.e. run every job at its most efficient
/// width and co-schedule the rest. This is the policy that exploits the
/// paper's scaling-diversity observation: poorly-scaling jobs go narrow.
#[derive(Debug, Clone, Copy, Default)]
pub struct AreaEfficient;

impl SchedulingPolicy for AreaEfficient {
    fn select(
        &mut self,
        pending: &[PendingJob<'_>],
        idle: u64,
        _capacity: u64,
        _now: Seconds,
    ) -> Option<Decision> {
        let mut best: Option<(f64, u64, usize)> = None; // (area, width, id)
        for p in pending {
            for w in p.job.widths().filter(|&w| w <= idle) {
                let d = p.job.minutes_at(w).expect("width from map");
                let cand = (w as f64 * d, w, p.id);
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
        best.map(|(_, width, id)| Decision { id, width })
    }

    fn name(&self) -> &'static str {
        "area-efficient"
    }
}

/// Shortest-job-first: among queued jobs, start the one whose *best
/// feasible* runtime is shortest, at that width. Minimizes mean wait on
/// bursty queues at the cost of starving long jobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestJobFirst;

impl SchedulingPolicy for ShortestJobFirst {
    fn select(
        &mut self,
        pending: &[PendingJob<'_>],
        idle: u64,
        _capacity: u64,
        _now: Seconds,
    ) -> Option<Decision> {
        let mut best: Option<(f64, usize, u64)> = None; // (minutes, id, width)
        for p in pending {
            let Some((minutes, width)) = p
                .job
                .widths()
                .filter(|&w| w <= idle)
                .map(|w| (p.job.minutes_at(w).expect("width from map"), w))
                .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
            else {
                continue;
            };
            let cand = (minutes, p.id, width);
            if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                best = Some(cand);
            }
        }
        best.map(|(_, id, width)| Decision { id, width })
    }

    fn name(&self) -> &'static str {
        "shortest-job-first"
    }
}

/// Widest-fit FCFS: start the oldest queued job as wide as the idle GPUs
/// allow (no waiting for the full pool).
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsWidestFit;

impl SchedulingPolicy for FcfsWidestFit {
    fn select(
        &mut self,
        pending: &[PendingJob<'_>],
        idle: u64,
        _capacity: u64,
        _now: Seconds,
    ) -> Option<Decision> {
        let oldest = pending.iter().min_by(|a, b| {
            a.arrival
                .partial_cmp(&b.arrival)
                .expect("arrivals are finite")
                .then(a.id.cmp(&b.id))
        })?;
        let width = oldest.job.widths().filter(|&w| w <= idle).max()?;
        Some(Decision {
            id: oldest.id,
            width,
        })
    }

    fn name(&self) -> &'static str {
        "fcfs-widest-fit"
    }
}

/// One completed execution in the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Submission index.
    pub id: usize,
    /// Job name.
    pub name: String,
    /// GPUs used.
    pub width: u64,
    /// Start time.
    pub start: Seconds,
    /// End time.
    pub end: Seconds,
    /// Queueing delay (start − arrival).
    pub wait: Seconds,
}

/// Permanent loss of GPUs at a point in time (a node dies and never
/// rejoins). The cluster reclaims idle GPUs first; if those don't cover
/// the loss it preempts running jobs — widest first, ties to the lowest
/// id — and requeues them, where the policy may re-place them narrower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFailure {
    /// When the node dies.
    pub at: Seconds,
    /// GPUs it takes with it.
    pub gpus: u64,
}

impl NodeFailure {
    /// A failure of `gpus` GPUs after `minutes`.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn after_minutes(minutes: f64, gpus: u64) -> Self {
        assert!(gpus > 0, "a failure must take at least one GPU");
        NodeFailure {
            at: Seconds::from_minutes(minutes),
            gpus,
        }
    }

    /// A failure of `devices` whole GPUs in a partitioned pool: every
    /// slice of a dead device dies with it, so the loss is counted in
    /// slots.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn of_devices_after_minutes(minutes: f64, devices: u64, layout: PartitionLayout) -> Self {
        assert!(devices > 0, "a failure must take at least one device");
        NodeFailure {
            at: Seconds::from_minutes(minutes),
            gpus: layout.device_slots(devices),
        }
    }
}

/// The full execution record of one cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTrace {
    /// Completions in start order.
    pub completions: Vec<Completion>,
    /// Time the last job finished.
    pub makespan: Seconds,
    /// GPUs in the pool at the start (node failures only shrink it).
    pub gpu_count: u64,
    /// Jobs killed by node failures and requeued (their wasted partial
    /// executions are not in `completions`).
    pub preemptions: u32,
    /// Submission ids that became unplaceable (every feasible width
    /// exceeds the surviving capacity) and were dropped.
    pub abandoned: Vec<usize>,
}

impl ClusterTrace {
    /// Mean queueing delay across jobs.
    pub fn mean_wait(&self) -> Seconds {
        if self.completions.is_empty() {
            return Seconds::ZERO;
        }
        let total: f64 = self.completions.iter().map(|c| c.wait.as_secs()).sum();
        Seconds::new(total / self.completions.len() as f64)
    }

    /// GPU-time utilization: busy GPU-seconds / (makespan × pool size).
    pub fn utilization(&self) -> f64 {
        if self.makespan == Seconds::ZERO {
            return 0.0;
        }
        let busy: f64 = self
            .completions
            .iter()
            .map(|c| (c.end.as_secs() - c.start.as_secs()) * c.width as f64)
            .sum();
        busy / (self.makespan.as_secs() * self.gpu_count as f64)
    }
}

impl fmt::Display for ClusterTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs on {} GPUs: makespan {}, mean wait {}, utilization {:.0}%",
            self.completions.len(),
            self.gpu_count,
            self.makespan,
            self.mean_wait(),
            self.utilization() * 100.0
        )?;
        if self.preemptions > 0 || !self.abandoned.is_empty() {
            write!(
                f,
                " ({} preempted, {} abandoned)",
                self.preemptions,
                self.abandoned.len()
            )?;
        }
        Ok(())
    }
}

/// The events driving the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrival(usize),
    Completion { id: usize, width: u64, run: u64 },
    NodeLoss { gpus: u64 },
}

/// A job currently executing.
#[derive(Debug, Clone, Copy)]
struct Running {
    id: usize,
    width: u64,
    run: u64,
}

/// A non-preemptive multi-GPU cluster.
#[derive(Debug, Clone, Copy)]
pub struct Cluster {
    gpu_count: u64,
}

impl Cluster {
    /// A cluster with `gpu_count` identical GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_count` is zero.
    pub fn new(gpu_count: u64) -> Self {
        assert!(gpu_count > 0, "cluster needs at least one GPU");
        Cluster { gpu_count }
    }

    /// A cluster over a partitioned pool: capacity is `layout.slots()`
    /// and every width in job duration maps counts slots, so policies
    /// place fractional-device slices with the same machinery they place
    /// whole GPUs with.
    pub fn partitioned(layout: PartitionLayout) -> Self {
        Cluster::new(layout.slots())
    }

    /// Execute the submissions under a policy and return the trace.
    ///
    /// # Panics
    ///
    /// Panics if the policy returns an infeasible decision (unknown job,
    /// width exceeding idle GPUs, or a width the job has no time for), or
    /// if some job can never be placed (width larger than the pool).
    pub fn run(
        &self,
        submissions: Vec<Submission>,
        policy: &mut dyn SchedulingPolicy,
    ) -> ClusterTrace {
        self.run_with_faults(submissions, policy, &[])
    }

    /// As [`Cluster::run`], with permanent node failures injected: each
    /// [`NodeFailure`] removes GPUs from the pool at its instant,
    /// reclaiming idle GPUs first and preempting running jobs (widest
    /// first, ties to the lowest id) when it must. Preempted jobs restart
    /// from scratch — they requeue and the policy re-places them on
    /// whatever capacity survives. Jobs whose narrowest width no longer
    /// fits are dropped into [`ClusterTrace::abandoned`].
    ///
    /// # Panics
    ///
    /// As [`Cluster::run`]; feasibility is checked against the *initial*
    /// pool.
    pub fn run_with_faults(
        &self,
        submissions: Vec<Submission>,
        policy: &mut dyn SchedulingPolicy,
        failures: &[NodeFailure],
    ) -> ClusterTrace {
        for s in &submissions {
            assert!(
                s.job.widths().any(|w| w <= self.gpu_count),
                "{} cannot run within {} GPUs",
                s.job.name(),
                self.gpu_count
            );
        }

        let mut queue: EventQueue<Event> = EventQueue::new();
        for (id, s) in submissions.iter().enumerate() {
            queue.schedule(s.arrival, Event::Arrival(id));
        }
        for f in failures {
            assert!(f.gpus > 0, "a failure must take at least one GPU");
            queue.schedule(f.at, Event::NodeLoss { gpus: f.gpus });
        }

        let mut capacity = self.gpu_count;
        let mut idle = self.gpu_count;
        let mut pending_ids: Vec<usize> = Vec::new();
        let mut running: Vec<Running> = Vec::new();
        // Current run number per submission; bumped on preemption so the
        // stale completion event of a killed run is ignored.
        let mut run_of: Vec<u64> = vec![0; submissions.len()];
        let mut start_of: Vec<Seconds> = vec![Seconds::ZERO; submissions.len()];
        let mut completions: Vec<Completion> = Vec::new();
        let mut preemptions: u32 = 0;
        let mut abandoned: Vec<usize> = Vec::new();
        let mut makespan = Seconds::ZERO;

        while let Some((now, first)) = queue.pop() {
            // Drain all simultaneous events before consulting the policy,
            // so same-instant arrivals/releases/failures are seen together.
            let mut batch = vec![first];
            while queue
                .next_time()
                .is_some_and(|t| (t.as_secs() - now.as_secs()).abs() < 1e-12)
            {
                batch.push(queue.pop().expect("peeked event exists").1);
            }
            for event in batch {
                match event {
                    Event::Arrival(id) => pending_ids.push(id),
                    Event::Completion { id, width, run } => {
                        if run != run_of[id] {
                            continue; // this run was preempted; GPUs already reclaimed
                        }
                        let pos = running
                            .iter()
                            .position(|r| r.id == id && r.run == run)
                            .expect("live completion matches a running job");
                        running.swap_remove(pos);
                        idle += width;
                        let sub = &submissions[id];
                        completions.push(Completion {
                            id,
                            name: sub.job.name().to_string(),
                            width,
                            start: start_of[id],
                            end: now,
                            wait: start_of[id] - sub.arrival,
                        });
                        makespan = makespan.max(now);
                    }
                    Event::NodeLoss { gpus } => {
                        let lost = gpus.min(capacity);
                        capacity -= lost;
                        let reclaimed = lost.min(idle);
                        idle -= reclaimed;
                        let mut remaining = lost - reclaimed;
                        while remaining > 0 {
                            // Deterministic victim: widest running job,
                            // ties to the lowest submission id.
                            let victim_pos = running
                                .iter()
                                .enumerate()
                                .max_by(|(_, a), (_, b)| {
                                    a.width.cmp(&b.width).then(b.id.cmp(&a.id))
                                })
                                .map(|(i, _)| i)
                                .expect("loss exceeds idle GPUs only with jobs running");
                            let victim = running.swap_remove(victim_pos);
                            run_of[victim.id] += 1;
                            preemptions += 1;
                            pending_ids.push(victim.id);
                            if victim.width > remaining {
                                idle += victim.width - remaining;
                                remaining = 0;
                            } else {
                                remaining -= victim.width;
                            }
                        }
                    }
                }
            }
            // Jobs that can no longer fit the surviving pool are dropped —
            // the cluster cannot promise them anything.
            pending_ids.retain(|&id| {
                let fits = submissions[id].job.widths().any(|w| w <= capacity);
                if !fits {
                    abandoned.push(id);
                }
                fits
            });
            // Let the policy fill the idle GPUs.
            loop {
                let pending: Vec<PendingJob<'_>> = pending_ids
                    .iter()
                    .map(|&id| PendingJob {
                        id,
                        job: &submissions[id].job,
                        arrival: submissions[id].arrival,
                    })
                    .collect();
                let Some(decision) = policy.select(&pending, idle, capacity, now) else {
                    break;
                };
                let pos = pending_ids
                    .iter()
                    .position(|&id| id == decision.id)
                    .unwrap_or_else(|| panic!("policy chose job {} not in queue", decision.id));
                assert!(
                    decision.width <= idle,
                    "policy placed {} GPUs with only {idle} idle",
                    decision.width
                );
                let sub = &submissions[decision.id];
                let minutes = sub.job.minutes_at(decision.width).unwrap_or_else(|| {
                    panic!("{} has no time at width {}", sub.job.name(), decision.width)
                });
                pending_ids.swap_remove(pos);
                idle -= decision.width;
                start_of[decision.id] = now;
                running.push(Running {
                    id: decision.id,
                    width: decision.width,
                    run: run_of[decision.id],
                });
                let end = now + Seconds::from_minutes(minutes);
                queue.schedule(
                    end,
                    Event::Completion {
                        id: decision.id,
                        width: decision.width,
                        run: run_of[decision.id],
                    },
                );
            }
        }
        assert!(
            pending_ids.is_empty() && running.is_empty(),
            "every feasible job must eventually run"
        );
        completions.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .expect("starts are finite")
                .then(a.id.cmp(&b.id))
        });
        abandoned.sort_unstable();
        ClusterTrace {
            completions,
            makespan,
            gpu_count: self.gpu_count,
            preemptions,
            abandoned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Vec<Submission> {
        vec![
            Submission::at_start(ClusterJobSpec::new(
                "scales",
                [(1, 100.0), (2, 52.0), (4, 27.0)],
            )),
            Submission::at_start(ClusterJobSpec::new(
                "stubborn",
                [(1, 90.0), (2, 80.0), (4, 76.0)],
            )),
            Submission::at_start(ClusterJobSpec::new(
                "quick",
                [(1, 10.0), (2, 6.0), (4, 4.0)],
            )),
        ]
    }

    #[test]
    fn naive_serializes_at_full_width() {
        let trace = Cluster::new(4).run(batch(), &mut NaiveWidest);
        // All three at width 4, back to back: 27 + 76 + 4.
        assert!((trace.makespan.as_minutes() - 107.0).abs() < 1e-9);
        assert!(trace.completions.iter().all(|c| c.width == 4));
    }

    #[test]
    fn area_efficient_beats_naive_on_mixed_batch() {
        let naive = Cluster::new(4).run(batch(), &mut NaiveWidest);
        let packed = Cluster::new(4).run(batch(), &mut AreaEfficient);
        assert!(
            packed.makespan < naive.makespan,
            "packed {} vs naive {}",
            packed.makespan,
            naive.makespan
        );
        assert!(packed.utilization() > 0.3);
        // Greedy-best-finish degenerates to naive on an all-at-once batch
        // (earliest finish is always the widest placement) — never worse.
        let greedy = Cluster::new(4).run(batch(), &mut GreedyBestFinish);
        assert!(greedy.makespan <= naive.makespan + Seconds::new(1e-9));
    }

    #[test]
    fn online_arrivals_respect_causality() {
        let subs = vec![
            Submission::at_start(ClusterJobSpec::new("first", [(2, 30.0)])),
            Submission::after_minutes(ClusterJobSpec::new("late", [(2, 10.0)]), 60.0),
        ];
        let trace = Cluster::new(2).run(subs, &mut GreedyBestFinish);
        let late = trace
            .completions
            .iter()
            .find(|c| c.name == "late")
            .expect("late job ran");
        assert!(late.start.as_minutes() >= 60.0 - 1e-9);
        // First finished long before: the late job starts immediately.
        assert!(late.wait.as_secs() < 1e-9);
    }

    #[test]
    fn fcfs_starts_narrow_when_pool_is_fragmented() {
        // One long 1-GPU job occupies the pool partially; FCFS places the
        // next arrival on the remaining GPU instead of waiting.
        let subs = vec![
            Submission::at_start(ClusterJobSpec::new("long", [(1, 100.0)])),
            Submission::at_start(ClusterJobSpec::new("next", [(1, 50.0), (2, 30.0)])),
        ];
        let trace = Cluster::new(2).run(subs, &mut FcfsWidestFit);
        let next = trace
            .completions
            .iter()
            .find(|c| c.name == "next")
            .expect("ran");
        assert_eq!(next.width, 1);
        assert_eq!(next.start, Seconds::ZERO);
    }

    #[test]
    fn naive_waits_for_the_whole_pool() {
        let subs = vec![
            Submission::at_start(ClusterJobSpec::new("long", [(1, 100.0)])),
            Submission::at_start(ClusterJobSpec::new("next", [(1, 50.0), (2, 30.0)])),
        ];
        let trace = Cluster::new(2).run(subs, &mut NaiveWidest);
        let next = trace
            .completions
            .iter()
            .find(|c| c.name == "next")
            .expect("ran");
        // Exclusive use: `next` waits for `long` to release the pool...
        assert!(next.start.as_minutes() >= 100.0 - 1e-9);
        // ...and the first job runs at its only width even though it
        // cannot fill the pool.
        let long = trace
            .completions
            .iter()
            .find(|c| c.name == "long")
            .expect("ran");
        assert_eq!(long.width, 1);
    }

    #[test]
    fn sjf_runs_the_quick_job_first() {
        let subs = vec![
            Submission::at_start(ClusterJobSpec::new("long", [(2, 100.0)])),
            Submission::at_start(ClusterJobSpec::new("quick", [(2, 5.0)])),
        ];
        let trace = Cluster::new(2).run(subs, &mut ShortestJobFirst);
        assert_eq!(trace.completions[0].name, "quick");
        assert_eq!(trace.completions[0].start, Seconds::ZERO);
    }

    #[test]
    fn trace_statistics_are_consistent() {
        let trace = Cluster::new(4).run(batch(), &mut GreedyBestFinish);
        assert_eq!(trace.completions.len(), 3);
        assert!(trace.utilization() > 0.0 && trace.utilization() <= 1.0);
        assert!(trace.mean_wait().as_secs() >= 0.0);
        let s = trace.to_string();
        assert!(s.contains("3 jobs on 4 GPUs"));
    }

    #[test]
    #[should_panic(expected = "cannot run within")]
    fn oversized_job_rejected() {
        let subs = vec![Submission::at_start(ClusterJobSpec::new(
            "wide",
            [(8, 10.0)],
        ))];
        let _ = Cluster::new(4).run(subs, &mut GreedyBestFinish);
    }

    #[test]
    fn fault_free_runs_report_no_preemptions() {
        let trace = Cluster::new(4).run(batch(), &mut AreaEfficient);
        assert_eq!(trace.preemptions, 0);
        assert!(trace.abandoned.is_empty());
    }

    #[test]
    fn every_policy_survives_a_node_failure() {
        let failure = [NodeFailure::after_minutes(10.0, 2)];
        let policies: Vec<Box<dyn SchedulingPolicy>> = vec![
            Box::new(NaiveWidest),
            Box::new(GreedyBestFinish),
            Box::new(AreaEfficient),
            Box::new(ShortestJobFirst),
            Box::new(FcfsWidestFit),
        ];
        for mut policy in policies {
            let trace = Cluster::new(4).run_with_faults(batch(), policy.as_mut(), &failure);
            assert_eq!(
                trace.completions.len(),
                3,
                "{} lost a job to the failure",
                policy.name()
            );
            assert!(trace.abandoned.is_empty(), "{}", policy.name());
            // Half the pool died: nothing may run wider than 2 afterwards.
            for c in &trace.completions {
                assert!(
                    c.start.as_minutes() < 10.0 || c.width <= 2,
                    "{} placed width {} on a 2-GPU pool",
                    policy.name(),
                    c.width
                );
            }
        }
    }

    #[test]
    fn preempted_job_is_replaced_narrower() {
        let subs = vec![Submission::at_start(ClusterJobSpec::new(
            "elastic",
            [(2, 20.0), (4, 10.0)],
        ))];
        let trace = Cluster::new(4).run_with_faults(
            subs,
            &mut GreedyBestFinish,
            &[NodeFailure::after_minutes(5.0, 2)],
        );
        assert_eq!(trace.preemptions, 1);
        assert_eq!(trace.completions.len(), 1);
        let c = &trace.completions[0];
        // Killed at minute 5 while running at width 4, restarted from
        // scratch at width 2: finishes at 5 + 20 minutes.
        assert_eq!(c.width, 2);
        assert!((c.start.as_minutes() - 5.0).abs() < 1e-9);
        assert!((trace.makespan.as_minutes() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gpus_absorb_a_loss_without_preemption() {
        let subs = vec![Submission::at_start(ClusterJobSpec::new(
            "narrow",
            [(1, 30.0)],
        ))];
        let trace = Cluster::new(4).run_with_faults(
            subs,
            &mut FcfsWidestFit,
            &[NodeFailure::after_minutes(5.0, 2)],
        );
        assert_eq!(trace.preemptions, 0);
        assert_eq!(trace.completions.len(), 1);
        assert!((trace.makespan.as_minutes() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn preempted_job_requeues_at_a_smaller_partition() {
        // One V100 carved into 4 slices. The job can run on the whole
        // device (4 slots, 10 min) or one quarter slice (1 slot, 44 min
        // — slower than 4×, as the priced interference model makes it).
        let layout = PartitionLayout::new(1, 4);
        let subs = vec![Submission::at_start(ClusterJobSpec::new(
            "elastic",
            [(1, 44.0), (4, 10.0)],
        ))];
        // Three of the four slices die at minute 5 (partial device loss:
        // the survivor keeps one healthy slice).
        let trace = Cluster::partitioned(layout).run_with_faults(
            subs,
            &mut GreedyBestFinish,
            &[NodeFailure::after_minutes(5.0, 3)],
        );
        assert_eq!(trace.preemptions, 1);
        assert_eq!(trace.completions.len(), 1);
        let c = &trace.completions[0];
        // Killed mid-run on the whole device, restarted from scratch on
        // the one surviving quarter slice: 5 + 44 minutes.
        assert_eq!(c.width, 1);
        assert!((c.start.as_minutes() - 5.0).abs() < 1e-9);
        assert!((trace.makespan.as_minutes() - 49.0).abs() < 1e-9);
    }

    #[test]
    fn whole_device_failure_takes_all_its_slices() {
        let layout = PartitionLayout::new(2, 7);
        assert_eq!(layout.slots(), 14);
        let f = NodeFailure::of_devices_after_minutes(5.0, 1, layout);
        assert_eq!(f.gpus, 7);
        // A 7-slot job preempted by the device loss fits the surviving
        // device exactly.
        let subs = vec![Submission::at_start(ClusterJobSpec::new(
            "suite",
            [(7, 30.0), (14, 18.0)],
        ))];
        let trace =
            Cluster::partitioned(layout).run_with_faults(subs, &mut FcfsWidestFit, &[f]);
        assert_eq!(trace.preemptions, 1);
        assert_eq!(trace.completions[0].width, 7);
        assert!((trace.makespan.as_minutes() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn every_policy_places_fractional_slices() {
        // A packed 2-GPU × 2-slice pool with slice-only jobs: every
        // policy must fill slots with fractional placements.
        let layout = PartitionLayout::new(2, 2);
        let subs = || {
            (0..4)
                .map(|i| {
                    Submission::at_start(ClusterJobSpec::new(
                        format!("slice-{i}"),
                        [(1, 20.0 + i as f64)],
                    ))
                })
                .collect::<Vec<_>>()
        };
        let policies: Vec<Box<dyn SchedulingPolicy>> = vec![
            Box::new(NaiveWidest),
            Box::new(GreedyBestFinish),
            Box::new(AreaEfficient),
            Box::new(ShortestJobFirst),
            Box::new(FcfsWidestFit),
        ];
        for mut policy in policies {
            let trace = Cluster::partitioned(layout).run(subs(), policy.as_mut());
            assert_eq!(trace.completions.len(), 4, "{}", policy.name());
            assert!(
                trace.completions.iter().all(|c| c.width == 1),
                "{} placed a non-slice width",
                policy.name()
            );
            // Naive waits for the whole pool between placements; the
            // work-conserving policies co-schedule all four at once.
            if policy.name() != "naive-widest" {
                assert!(
                    (trace.makespan.as_minutes() - 23.0).abs() < 1e-9,
                    "{}: {}",
                    policy.name(),
                    trace.makespan.as_minutes()
                );
            }
        }
    }

    #[test]
    fn whole_device_layout_matches_the_classic_cluster() {
        let classic = Cluster::new(4).run(batch(), &mut AreaEfficient);
        let layered =
            Cluster::partitioned(PartitionLayout::whole_devices(4)).run(batch(), &mut AreaEfficient);
        assert_eq!(classic, layered);
    }

    #[test]
    fn job_too_wide_for_surviving_pool_is_abandoned() {
        let subs = vec![Submission::at_start(ClusterJobSpec::new(
            "wide-only",
            [(4, 50.0)],
        ))];
        let trace = Cluster::new(4).run_with_faults(
            subs,
            &mut GreedyBestFinish,
            &[NodeFailure::after_minutes(10.0, 3)],
        );
        assert_eq!(trace.preemptions, 1);
        assert_eq!(trace.abandoned, vec![0]);
        assert!(trace.completions.is_empty());
        let s = trace.to_string();
        assert!(s.contains("1 preempted, 1 abandoned"), "{s}");
    }
}
