//! Generic discrete-event simulation primitives.
//!
//! A deterministic event queue ([`EventQueue`]) ordered by simulated time
//! with FIFO tie-breaking, plus a [`FifoResource`] helper for serially-shared
//! resources (the host data loader, a contended link). The training engine
//! in [`engine`](crate::engine) drives its phase machine off these.
//!
//! [`EventQueue`] is a calendar queue (Brown 1988): events live in an arena
//! and are bucketed by a virtual bucket number so `schedule`/`pop` are O(1)
//! amortized instead of the O(log n) of a binary heap, which matters once
//! cluster replays and fault studies schedule millions of events. The
//! original `BinaryHeap` implementation survives as
//! [`ReferenceEventQueue`]; the differential battery in
//! `tests/properties.rs` drives both with fuzzed schedules and demands
//! identical pop sequences, FIFO ties included.
//!
//! # Examples
//!
//! ```
//! use mlperf_sim::des::EventQueue;
//! use mlperf_hw::Seconds;
//!
//! let mut q = EventQueue::new();
//! q.schedule(Seconds::new(2.0), "late");
//! q.schedule(Seconds::new(1.0), "early");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t.as_secs(), e), (1.0, "early"));
//! ```

use mlperf_hw::units::Seconds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Calendar-queue sizing floor: below this bucket count the scan overhead
/// of a plain list would win anyway.
const MIN_BUCKETS: usize = 4;
/// Calendar-queue sizing ceiling; beyond this, resizing stops doubling.
const MAX_BUCKETS: usize = 1 << 16;

/// One arena slot: a scheduled event plus its ordering key and the virtual
/// bucket it was filed under. `event` is `None` while the slot sits on the
/// free list.
#[derive(Debug)]
struct Slot<E> {
    time: Seconds,
    seq: u64,
    vbucket: u64,
    event: Option<E>,
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant pop in insertion order, which makes
/// simulations reproducible regardless of payload type.
///
/// Internally a calendar queue: each event is assigned a *virtual bucket*
/// `floor(time / width)` once at schedule time (stored, never recomputed, so
/// no floating-point membership test can disagree with itself later) and
/// filed into `buckets[vbucket % nbuckets]`. The current minimum is cached,
/// keeping [`EventQueue::next_time`] O(1); after a pop the scan resumes from
/// the popped event's virtual bucket. The queue resizes (doubling/halving
/// the bucket array, re-deriving the width from the live time span) as the
/// population drifts, giving O(1) amortized operations for the
/// well-distributed schedules simulations produce.
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    buckets: Vec<Vec<u32>>,
    width: f64,
    /// Virtual bucket of the cached head (scan cursor).
    cursor: u64,
    /// Arena index of the earliest pending event.
    head: Option<u32>,
    len: usize,
    seq: u64,
    now: Seconds,
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            buckets: vec![Vec::new(); MIN_BUCKETS],
            width: 1.0,
            cursor: 0,
            head: None,
            len: 0,
            seq: 0,
            now: Seconds::ZERO,
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// The virtual bucket of a timestamp under the current width. Division
    /// by a fixed positive width is monotone, so `t1 <= t2` always implies
    /// `vbucket(t1) <= vbucket(t2)` — the invariant the forward scan rests
    /// on. (`as u64` saturates, which preserves monotonicity at the far
    /// end.)
    fn vbucket_of(&self, t: Seconds) -> u64 {
        (t.as_secs() / self.width) as u64
    }

    fn bucket_index(&self, vbucket: u64) -> usize {
        (vbucket % self.buckets.len() as u64) as usize
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time (causality violation).
    pub fn schedule(&mut self, at: Seconds, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({} < {})",
            at.as_secs(),
            self.now.as_secs()
        );
        if self.len + 1 > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        }
        let seq = self.seq;
        self.seq += 1;
        let vbucket = self.vbucket_of(at);
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Slot {
                    time: at,
                    seq,
                    vbucket,
                    event: Some(event),
                };
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot {
                    time: at,
                    seq,
                    vbucket,
                    event: Some(event),
                });
                idx
            }
        };
        let b = self.bucket_index(vbucket);
        self.buckets[b].push(idx);
        self.len += 1;
        // A strictly earlier event displaces the head; a tie never does
        // (the incumbent holds the smaller sequence number — FIFO).
        let displaces = match self.head {
            None => true,
            Some(h) => at < self.slots[h as usize].time,
        };
        if displaces {
            self.head = Some(idx);
            self.cursor = vbucket;
        }
    }

    /// Schedule `event` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: Seconds, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Seconds, E)> {
        let h = self.head?;
        let (time, vbucket) = {
            let slot = &self.slots[h as usize];
            (slot.time, slot.vbucket)
        };
        let b = self.bucket_index(vbucket);
        let pos = self.buckets[b]
            .iter()
            .position(|&i| i == h)
            .expect("head is filed in its bucket");
        self.buckets[b].swap_remove(pos);
        let event = self.slots[h as usize]
            .event
            .take()
            .expect("head slot holds an event");
        self.free.push(h);
        self.len -= 1;
        self.now = time;
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild((self.buckets.len() / 2).max(MIN_BUCKETS));
        }
        self.find_head();
        Some((time, event))
    }

    /// Re-derive the cached head after a removal: scan forward from the
    /// cursor for one full lap of the calendar; if that lap is empty the
    /// remaining events are far in the future, so fall back to a direct
    /// global minimum search (the classic calendar-queue escape hatch for
    /// sparse long jumps).
    fn find_head(&mut self) {
        if self.len == 0 {
            self.head = None;
            return;
        }
        let nbuckets = self.buckets.len() as u64;
        for lap in 0..nbuckets {
            let vb = self.cursor + lap;
            let b = self.bucket_index(vb);
            let mut best: Option<u32> = None;
            for &i in &self.buckets[b] {
                let s = &self.slots[i as usize];
                if s.vbucket != vb {
                    continue;
                }
                let earlier = match best {
                    None => true,
                    Some(j) => {
                        let t = &self.slots[j as usize];
                        (s.time, s.seq) < (t.time, t.seq)
                    }
                };
                if earlier {
                    best = Some(i);
                }
            }
            if let Some(i) = best {
                self.head = Some(i);
                self.cursor = vb;
                return;
            }
        }
        let mut best: Option<u32> = None;
        for bucket in &self.buckets {
            for &i in bucket {
                let s = &self.slots[i as usize];
                let earlier = match best {
                    None => true,
                    Some(j) => {
                        let t = &self.slots[j as usize];
                        (s.time, s.seq) < (t.time, t.seq)
                    }
                };
                if earlier {
                    best = Some(i);
                }
            }
        }
        let i = best.expect("non-empty queue has a minimum");
        self.cursor = self.slots[i as usize].vbucket;
        self.head = Some(i);
    }

    /// Resize the bucket array and re-derive the width from the live
    /// events' time span, refiling every event under its new virtual
    /// bucket. Arena indices are stable, so the cached head survives.
    fn rebuild(&mut self, nbuckets: usize) {
        let mut min_t = f64::INFINITY;
        let mut max_t = f64::NEG_INFINITY;
        for s in &self.slots {
            if s.event.is_some() {
                min_t = min_t.min(s.time.as_secs());
                max_t = max_t.max(s.time.as_secs());
            }
        }
        let mut width = if self.len > 0 {
            (max_t - min_t) / self.len as f64
        } else {
            1.0
        };
        if !width.is_finite() || width <= 0.0 {
            width = 1.0;
        }
        // Keep virtual bucket numbers well inside f64's exact-integer
        // range even for tiny widths at large timestamps.
        if max_t > 0.0 {
            width = width.max(max_t / 1e15);
        }
        self.width = width;
        self.buckets = vec![Vec::new(); nbuckets];
        // The cursor must never overshoot a live event's window (the lap
        // scan only looks forward), so re-derive it as the minimum virtual
        // bucket while refiling — the cached head may already be stale when
        // a pop shrinks the calendar.
        let mut min_vb = u64::MAX;
        for i in 0..self.slots.len() {
            if self.slots[i].event.is_some() {
                let vb = self.vbucket_of(self.slots[i].time);
                self.slots[i].vbucket = vb;
                min_vb = min_vb.min(vb);
                let b = self.bucket_index(vb);
                self.buckets[b].push(i as u32);
            }
        }
        self.cursor = if self.len == 0 { 0 } else { min_vb };
    }

    /// The timestamp of the next pending event without popping it.
    pub fn next_time(&self) -> Option<Seconds> {
        self.head.map(|h| self.slots[h as usize].time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len)
            .finish()
    }
}

/// An entry in the reference queue: ordered by time, then insertion
/// sequence.
struct Entry<E> {
    time: Seconds,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are always finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original `BinaryHeap` future-event list, kept verbatim as the
/// oracle for the calendar queue's differential battery: any schedule
/// driven through both must produce identical pop sequences (timestamps,
/// payloads, and FIFO tie order).
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Seconds,
}

impl<E> ReferenceEventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        ReferenceEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Seconds::ZERO,
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time (causality violation).
    pub fn schedule(&mut self, at: Seconds, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({} < {})",
            at.as_secs(),
            self.now.as_secs()
        );
        self.heap.push(Entry {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: Seconds, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Seconds, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next pending event without popping it.
    pub fn next_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        ReferenceEventQueue::new()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for ReferenceEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReferenceEventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

/// A serially-reusable resource with FIFO service order and busy-time
/// accounting (a socket's loader workers, a shared PCIe uplink).
#[derive(Debug, Clone, PartialEq)]
pub struct FifoResource {
    free_at: Seconds,
    busy: Seconds,
}

impl FifoResource {
    /// A resource idle from time zero.
    pub fn new() -> Self {
        FifoResource {
            free_at: Seconds::ZERO,
            busy: Seconds::ZERO,
        }
    }

    /// Reserve the resource for `service` starting no earlier than
    /// `request`; returns the completion time.
    pub fn serve(&mut self, request: Seconds, service: Seconds) -> Seconds {
        let start = request.max(self.free_at);
        let done = start + service;
        self.free_at = done;
        self.busy += service;
        done
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> Seconds {
        self.free_at
    }

    /// Total busy time accumulated.
    pub fn busy(&self) -> Seconds {
        self.busy
    }
}

impl Default for FifoResource {
    fn default() -> Self {
        FifoResource::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(3.0), 'c');
        q.schedule(Seconds::new(1.0), 'a');
        q.schedule(Seconds::new(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(Seconds::new(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(5.0), ());
        assert_eq!(q.now(), Seconds::ZERO);
        q.pop();
        assert_eq!(q.now(), Seconds::new(5.0));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(2.0), "first");
        q.pop();
        q.schedule_after(Seconds::new(3.0), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Seconds::new(5.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(2.0), ());
        q.pop();
        q.schedule(Seconds::new(1.0), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Seconds::new(1.0), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn next_time_peeks_without_advancing() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(Seconds::new(7.0), ());
        q.schedule(Seconds::new(3.0), ());
        assert_eq!(q.next_time(), Some(Seconds::new(3.0)));
        assert_eq!(q.now(), Seconds::ZERO);
    }

    #[test]
    fn growth_and_shrink_keep_order() {
        // Push far past the initial bucket count (several doublings), then
        // drain (several halvings): order must hold across every rebuild.
        let mut q = EventQueue::new();
        let n = 1000u64;
        for i in 0..n {
            // A scrambled but collision-free schedule.
            let t = ((i * 7919) % n) as f64 * 0.125;
            q.schedule(Seconds::new(t), t as u64);
        }
        let mut last = -1.0;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t.as_secs() >= last);
            last = t.as_secs();
            popped += 1;
        }
        assert_eq!(popped, n);
    }

    #[test]
    fn far_future_jump_uses_direct_search() {
        // One cluster now, one event a billion widths away: after the
        // cluster drains, the scan must leap to the stray event instead of
        // walking a bucket lap per width.
        let mut q = EventQueue::new();
        for i in 0..8 {
            q.schedule(Seconds::new(i as f64 * 0.01), "near");
        }
        q.schedule(Seconds::new(1.0e9), "far");
        for _ in 0..8 {
            assert_eq!(q.pop().unwrap().1, "near");
        }
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Seconds::new(1.0e9), "far"));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_survive_rebuilds() {
        let mut q = EventQueue::new();
        // Enough same-time events to force growth rebuilds mid-insert.
        for i in 0..64 {
            q.schedule(Seconds::new(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..64).collect::<Vec<i32>>());
    }

    #[test]
    fn hold_pattern_matches_reference() {
        // The classic calendar-queue workload: a steady-state hold loop
        // (pop one, schedule one) checked move-for-move against the
        // BinaryHeap oracle.
        use mlperf_testkit::rng::Rng;
        let mut rng = Rng::new(0x00d5_ca1e);
        let mut cal = EventQueue::new();
        let mut oracle = ReferenceEventQueue::new();
        for i in 0..32u64 {
            let t = Seconds::new(rng.gen_f64() * 10.0);
            cal.schedule(t, i);
            oracle.schedule(t, i);
        }
        for i in 32..2000u64 {
            let (tc, ec) = cal.pop().unwrap();
            let (tr, er) = oracle.pop().unwrap();
            assert_eq!((tc, ec), (tr, er), "hold diverged at step {i}");
            let dt = Seconds::new(rng.gen_f64() * 5.0);
            cal.schedule_after(dt, i);
            oracle.schedule_after(dt, i);
        }
        while let Some(got) = cal.pop() {
            assert_eq!(Some(got), oracle.pop());
        }
        assert!(oracle.is_empty());
    }

    #[test]
    fn fifo_resource_queues_back_to_back() {
        let mut r = FifoResource::new();
        let d1 = r.serve(Seconds::ZERO, Seconds::new(2.0));
        let d2 = r.serve(Seconds::new(1.0), Seconds::new(2.0));
        assert_eq!(d1, Seconds::new(2.0));
        // Second request arrived while busy: starts at 2.0.
        assert_eq!(d2, Seconds::new(4.0));
        assert_eq!(r.busy(), Seconds::new(4.0));
    }

    #[test]
    fn fifo_resource_idles_between_requests() {
        let mut r = FifoResource::new();
        r.serve(Seconds::ZERO, Seconds::new(1.0));
        let d = r.serve(Seconds::new(10.0), Seconds::new(1.0));
        assert_eq!(d, Seconds::new(11.0));
        assert_eq!(r.busy(), Seconds::new(2.0)); // idle time not counted
    }
}
