//! Generic discrete-event simulation primitives.
//!
//! A deterministic event queue ([`EventQueue`]) ordered by simulated time
//! with FIFO tie-breaking, plus a [`FifoResource`] helper for serially-shared
//! resources (the host data loader, a contended link). The training engine
//! in [`engine`](crate::engine) drives its phase machine off these.
//!
//! # Examples
//!
//! ```
//! use mlperf_sim::des::EventQueue;
//! use mlperf_hw::Seconds;
//!
//! let mut q = EventQueue::new();
//! q.schedule(Seconds::new(2.0), "late");
//! q.schedule(Seconds::new(1.0), "early");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t.as_secs(), e), (1.0, "early"));
//! ```

use mlperf_hw::units::Seconds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by time, then insertion sequence.
struct Entry<E> {
    time: Seconds,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert for earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are always finite")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant pop in insertion order, which makes
/// simulations reproducible regardless of payload type.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: Seconds,
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Seconds::ZERO,
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time (causality violation).
    pub fn schedule(&mut self, at: Seconds, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({} < {})",
            at.as_secs(),
            self.now.as_secs()
        );
        self.heap.push(Entry {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after a delay from the current time.
    pub fn schedule_after(&mut self, delay: Seconds, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Seconds, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The timestamp of the next pending event without popping it.
    pub fn next_time(&self) -> Option<Seconds> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

/// A serially-reusable resource with FIFO service order and busy-time
/// accounting (a socket's loader workers, a shared PCIe uplink).
#[derive(Debug, Clone, PartialEq)]
pub struct FifoResource {
    free_at: Seconds,
    busy: Seconds,
}

impl FifoResource {
    /// A resource idle from time zero.
    pub fn new() -> Self {
        FifoResource {
            free_at: Seconds::ZERO,
            busy: Seconds::ZERO,
        }
    }

    /// Reserve the resource for `service` starting no earlier than
    /// `request`; returns the completion time.
    pub fn serve(&mut self, request: Seconds, service: Seconds) -> Seconds {
        let start = request.max(self.free_at);
        let done = start + service;
        self.free_at = done;
        self.busy += service;
        done
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> Seconds {
        self.free_at
    }

    /// Total busy time accumulated.
    pub fn busy(&self) -> Seconds {
        self.busy
    }
}

impl Default for FifoResource {
    fn default() -> Self {
        FifoResource::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(3.0), 'c');
        q.schedule(Seconds::new(1.0), 'a');
        q.schedule(Seconds::new(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(Seconds::new(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(5.0), ());
        assert_eq!(q.now(), Seconds::ZERO);
        q.pop();
        assert_eq!(q.now(), Seconds::new(5.0));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(2.0), "first");
        q.pop();
        q.schedule_after(Seconds::new(3.0), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, Seconds::new(5.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(2.0), ());
        q.pop();
        q.schedule(Seconds::new(1.0), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Seconds::new(1.0), ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn fifo_resource_queues_back_to_back() {
        let mut r = FifoResource::new();
        let d1 = r.serve(Seconds::ZERO, Seconds::new(2.0));
        let d2 = r.serve(Seconds::new(1.0), Seconds::new(2.0));
        assert_eq!(d1, Seconds::new(2.0));
        // Second request arrived while busy: starts at 2.0.
        assert_eq!(d2, Seconds::new(4.0));
        assert_eq!(r.busy(), Seconds::new(4.0));
    }

    #[test]
    fn fifo_resource_idles_between_requests() {
        let mut r = FifoResource::new();
        r.serve(Seconds::ZERO, Seconds::new(1.0));
        let d = r.serve(Seconds::new(10.0), Seconds::new(1.0));
        assert_eq!(d, Seconds::new(11.0));
        assert_eq!(r.busy(), Seconds::new(2.0)); // idle time not counted
    }
}
