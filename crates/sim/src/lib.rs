//! Discrete-event multi-GPU training simulator.
//!
//! This crate replaces the paper's physical testbed: it executes the
//! host-preprocess → H2D → forward/backward → all-reduce → update pipeline
//! of synchronous data-parallel training against the hardware models of
//! [`mlperf_hw`] and the analytical operator graphs of [`mlperf_models`].
//!
//! * [`des`] — deterministic event queue and FIFO resources;
//! * [`kernel`] — roofline-limited step pricing with calibrated efficiencies;
//! * [`allreduce`] — ring/tree/naive collective cost models over topology
//!   peer paths;
//! * [`job`] — training-job descriptions (batch policy, convergence,
//!   precision, calibration knobs);
//! * [`engine`] — the pipeline simulator producing steady-state
//!   [`StepReport`]s;
//! * [`cluster`] — an event-driven multi-GPU cluster with pluggable online
//!   scheduling policies (the §IV-D "effective algorithm" extension);
//! * [`training`] — end-to-end time-to-quality runs;
//! * [`fault`] / [`checkpoint`] — seeded fault injection (GPU death, link
//!   flaps, stragglers, host stalls) replayed deterministically against a
//!   checkpoint/restart cost model priced through the storage tier.
//!
//! # Examples
//!
//! ```
//! use mlperf_sim::{Simulator, TrainingJob, ConvergenceModel, training::train_on_first};
//! use mlperf_data::{DatasetId, InputPipeline};
//! use mlperf_hw::{systems::SystemId, units::Bytes};
//! use mlperf_models::zoo::resnet::resnet50;
//!
//! let system = SystemId::C4140K.spec();
//! let sim = Simulator::new(&system);
//! let job = TrainingJob::builder(
//!     "resnet50",
//!     resnet50(),
//!     InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2)),
//!     96,
//!     ConvergenceModel::new(63.0, 768, 0.0),
//! )
//! .build();
//! let outcome = train_on_first(&sim, &job, 4)?;
//! assert!(outcome.total_time.as_hours() > 0.0);
//! # Ok::<(), mlperf_sim::SimError>(())
//! ```

pub mod allreduce;
pub mod checkpoint;
pub mod cluster;
pub mod des;
pub mod engine;
pub mod fault;
pub mod job;
pub mod kernel;
pub mod trace;
pub mod training;

pub use allreduce::AllReduceAlgorithm;
pub use checkpoint::CheckpointSpec;
pub use cluster::{Cluster, ClusterJobSpec, ClusterTrace, NodeFailure, SchedulingPolicy, Submission};
pub use engine::{Engine, RunOutcome, RunSpec, SimError, Simulator, StepReport};
pub use fault::{
    FaultConfig, FaultEvent, FaultKind, FaultOutcome, FaultPlan, FaultStats, FaultTrace,
    RetryPolicy,
};
pub use job::{ConvergenceModel, TrainingJob, TrainingJobBuilder};
pub use kernel::{Efficiency, KernelTimer};
pub use trace::{GpuPhases, IterationRecord, RunTrace};
pub use training::{outcome_from_step, train, train_on_first, TrainingOutcome};
