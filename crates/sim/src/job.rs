//! Training-job descriptions: everything the engine needs to run one
//! benchmark on one platform.
//!
//! A [`TrainingJob`] bundles the model graph, input pipeline, batch policy,
//! optimizer, precision, convergence model, and the calibrated efficiency /
//! overlap knobs. The benchmark registry in the suite crate constructs one
//! per benchmark; the engine consumes them.

use crate::allreduce::AllReduceAlgorithm;
use crate::kernel::Efficiency;
use mlperf_data::InputPipeline;
use mlperf_hw::partition::PartitionSpec;
use mlperf_hw::units::{Bytes, Seconds};
use mlperf_models::{ModelGraph, Optimizer, PrecisionPolicy};
use std::fmt;

/// How many epochs a benchmark needs to hit its quality target, as a
/// function of the global batch size.
///
/// MLPerf's metric is time-to-quality; larger global batches converge in
/// more epochs (generalization gap), which is one of the two mechanisms
/// behind sub-linear scaling (the other being communication).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceModel {
    /// Epochs to target at the reference global batch.
    pub base_epochs: f64,
    /// The global batch the submission was tuned at.
    pub reference_global_batch: u64,
    /// Fractional extra epochs per doubling of the global batch beyond the
    /// reference (0.0 = perfectly batch-insensitive).
    pub epoch_penalty_per_doubling: f64,
}

impl ConvergenceModel {
    /// Construct, validating positivity.
    ///
    /// # Panics
    ///
    /// Panics if `base_epochs` or `reference_global_batch` is nonpositive
    /// or the penalty is negative.
    pub fn new(
        base_epochs: f64,
        reference_global_batch: u64,
        epoch_penalty_per_doubling: f64,
    ) -> Self {
        assert!(
            base_epochs > 0.0 && base_epochs.is_finite(),
            "epochs must be positive"
        );
        assert!(
            reference_global_batch > 0,
            "reference batch must be positive"
        );
        assert!(
            epoch_penalty_per_doubling >= 0.0 && epoch_penalty_per_doubling.is_finite(),
            "penalty must be non-negative"
        );
        ConvergenceModel {
            base_epochs,
            reference_global_batch,
            epoch_penalty_per_doubling,
        }
    }

    /// Epochs needed at the given global batch.
    pub fn epochs_at(&self, global_batch: u64) -> f64 {
        assert!(global_batch > 0, "global batch must be positive");
        let doublings = (global_batch as f64 / self.reference_global_batch as f64)
            .log2()
            .max(0.0);
        self.base_epochs * (1.0 + self.epoch_penalty_per_doubling * doublings)
    }

    /// Run-to-run coefficient of variation of epochs-to-target.
    ///
    /// MLPerf reports medians over several runs precisely because
    /// epochs-to-target is stochastic in the seed, and the paper observes
    /// the spread is widest for the benchmarks whose convergence is most
    /// sensitive to batch/hyperparameter choices. We model that coupling:
    /// a floor of 2% seed noise, plus a share proportional to the batch
    /// penalty (NCF and SSD spread more than ResNet-50).
    pub fn run_cv(&self) -> f64 {
        0.02 + 0.10 * self.epoch_penalty_per_doubling
    }
}

/// A complete, runnable training-job description.
#[derive(Debug, Clone)]
pub struct TrainingJob {
    name: String,
    model: ModelGraph,
    pipeline: InputPipeline,
    per_gpu_batch: u64,
    max_global_batch: Option<u64>,
    optimizer: Optimizer,
    precision: PrecisionPolicy,
    convergence: ConvergenceModel,
    efficiency: Efficiency,
    allreduce: AllReduceAlgorithm,
    comm_overlap: f64,
    host_step_core_secs: f64,
    dram_base: Bytes,
    hbm_overhead: Bytes,
    prefetch_depth: u64,
    gpu_step_overhead: Seconds,
    allreduce_period: u64,
    host_fixed_core_secs: f64,
    host_poll_cores: f64,
    partition: Option<PartitionSpec>,
}

/// Builder for [`TrainingJob`] ([C-BUILDER]): the required pieces go into
/// [`TrainingJob::builder`], the knobs have sensible defaults.
#[derive(Debug, Clone)]
pub struct TrainingJobBuilder {
    job: TrainingJob,
}

impl TrainingJob {
    /// Start building a job from its required parts.
    pub fn builder(
        name: impl Into<String>,
        model: ModelGraph,
        pipeline: InputPipeline,
        per_gpu_batch: u64,
        convergence: ConvergenceModel,
    ) -> TrainingJobBuilder {
        assert!(per_gpu_batch > 0, "per-GPU batch must be positive");
        TrainingJobBuilder {
            job: TrainingJob {
                name: name.into(),
                model,
                pipeline,
                per_gpu_batch,
                max_global_batch: None,
                optimizer: Optimizer::SgdMomentum,
                precision: PrecisionPolicy::Amp,
                convergence,
                efficiency: Efficiency::default(),
                allreduce: AllReduceAlgorithm::Ring,
                comm_overlap: 0.5,
                host_step_core_secs: 0.004,
                dram_base: Bytes::from_gib(4),
                hbm_overhead: Bytes::from_gib(1),
                prefetch_depth: 2,
                gpu_step_overhead: Seconds::new(0.002),
                allreduce_period: 1,
                host_fixed_core_secs: 0.0,
                host_poll_cores: 0.0,
                partition: None,
            },
        }
    }

    /// The benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator graph being trained.
    pub fn model(&self) -> &ModelGraph {
        &self.model
    }

    /// The input pipeline feeding the job.
    pub fn pipeline(&self) -> &InputPipeline {
        &self.pipeline
    }

    /// Requested per-GPU batch size (before the global cap).
    pub fn per_gpu_batch(&self) -> u64 {
        self.per_gpu_batch
    }

    /// Optional cap on the global batch (NCF's small-dataset limit, §IV-D).
    pub fn max_global_batch(&self) -> Option<u64> {
        self.max_global_batch
    }

    /// The effective per-GPU batch when running on `n` GPUs: the requested
    /// batch, shrunk if the global cap binds.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn effective_per_gpu_batch(&self, n: u64) -> u64 {
        assert!(n > 0, "need at least one GPU");
        let requested = self.per_gpu_batch;
        match self.max_global_batch {
            Some(cap) => (cap / n).clamp(1, requested),
            None => requested,
        }
    }

    /// The global batch on `n` GPUs.
    pub fn global_batch(&self, n: u64) -> u64 {
        self.effective_per_gpu_batch(n) * n
    }

    /// The optimizer used.
    pub fn optimizer(&self) -> Optimizer {
        self.optimizer
    }

    /// The numeric policy used.
    pub fn precision(&self) -> PrecisionPolicy {
        self.precision
    }

    /// A copy of this job at a different precision (for Fig. 3's AMP-vs-FP32
    /// comparison).
    pub fn with_precision(&self, precision: PrecisionPolicy) -> TrainingJob {
        let mut job = self.clone();
        job.precision = precision;
        job
    }

    /// A copy of this job at a different per-GPU batch size (e.g. the
    /// smaller batches FP32 reference implementations fit in memory).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_per_gpu_batch(&self, batch: u64) -> TrainingJob {
        assert!(batch > 0, "per-GPU batch must be positive");
        let mut job = self.clone();
        job.per_gpu_batch = batch;
        job
    }

    /// The MIG-style device slice this job runs on, if any. `None` means
    /// the whole GPU — the pre-partition suite's (byte-identical) default.
    pub fn partition(&self) -> Option<PartitionSpec> {
        self.partition
    }

    /// A copy of this job placed on a device partition (or back on the
    /// whole GPU with `None`). The engine slices every GPU the job runs
    /// on and applies the co-location interference model.
    pub fn with_partition(&self, partition: Option<PartitionSpec>) -> TrainingJob {
        let mut job = self.clone();
        job.partition = partition;
        job
    }

    /// A copy of this job at different sustained efficiencies (e.g. the
    /// unoptimized reference implementation instead of the submission).
    pub fn with_efficiency(&self, efficiency: Efficiency) -> TrainingJob {
        let mut job = self.clone();
        job.efficiency = efficiency;
        job
    }

    /// A copy of this job using a different all-reduce algorithm (ablation).
    pub fn with_allreduce(&self, alg: AllReduceAlgorithm) -> TrainingJob {
        let mut job = self.clone();
        job.allreduce = alg;
        job
    }

    /// A copy of this job with communication/compute overlap disabled
    /// (ablation).
    pub fn without_overlap(&self) -> TrainingJob {
        self.with_comm_overlap(0.0)
    }

    /// A copy of this job at a different overlap fraction (sensitivity
    /// studies).
    ///
    /// # Panics
    ///
    /// Panics if `overlap` is outside `[0, 1]`.
    pub fn with_comm_overlap(&self, overlap: f64) -> TrainingJob {
        assert!((0.0..=1.0).contains(&overlap), "overlap must be in [0,1]");
        let mut job = self.clone();
        job.comm_overlap = overlap;
        job
    }

    /// The convergence model.
    pub fn convergence(&self) -> ConvergenceModel {
        self.convergence
    }

    /// Sustained-efficiency calibration.
    pub fn efficiency(&self) -> Efficiency {
        self.efficiency
    }

    /// The collective algorithm for gradient exchange.
    pub fn allreduce(&self) -> AllReduceAlgorithm {
        self.allreduce
    }

    /// Fraction of the all-reduce hidden behind the backward pass
    /// (bucketed/overlapped gradient reduction).
    pub fn comm_overlap(&self) -> f64 {
        self.comm_overlap
    }

    /// Host CPU work per iteration per GPU *besides* preprocessing: kernel
    /// launches, Python/framework overhead, CUDA driver time
    /// (reference-core-seconds).
    pub fn host_step_core_secs(&self) -> f64 {
        self.host_step_core_secs
    }

    /// Host DRAM consumed regardless of GPU count: the framework, the
    /// resident dataset cache, pinned staging arenas.
    pub fn dram_base(&self) -> Bytes {
        self.dram_base
    }

    /// Per-GPU HBM overhead besides the training replica: CUDA context,
    /// cuDNN workspaces, framework allocator slack.
    pub fn hbm_overhead(&self) -> Bytes {
        self.hbm_overhead
    }

    /// Input-pipeline prefetch depth (in-flight batches per GPU).
    pub fn prefetch_depth(&self) -> u64 {
        self.prefetch_depth
    }

    /// Fixed per-iteration device-side overhead: kernel launch gaps,
    /// synchronization, Python dispatch. Batch-size independent — the
    /// mechanism behind small-batch GPU underutilization (NCF, §V-B).
    pub fn gpu_step_overhead(&self) -> Seconds {
        self.gpu_step_overhead
    }

    /// Gradient-accumulation period: optimizer steps (and gradient
    /// exchanges) happen once per this many forward/backward iterations.
    /// The v0.5 translation submissions accumulate micro-batches to reach
    /// their large token batches.
    pub fn allreduce_period(&self) -> u64 {
        self.allreduce_period
    }

    /// GPU-count-*independent* host CPU work per step: the trainer
    /// process's own loop (session bookkeeping, summaries). Makes CPU
    /// utilization grow sub-linearly with GPUs, as TensorFlow's does in
    /// Table V (reference-core-seconds).
    pub fn host_fixed_core_secs(&self) -> f64 {
        self.host_fixed_core_secs
    }

    /// Cores busy-polling per GPU during multi-GPU steps (NCCL progress
    /// threads). Makes CPU utilization grow *super*-linearly for
    /// communication-dominated jobs, as NCF's does in Table V.
    pub fn host_poll_cores(&self) -> f64 {
        self.host_poll_cores
    }
}

impl fmt::Display for TrainingJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (batch {}/GPU, {}, {})",
            self.name, self.per_gpu_batch, self.precision, self.optimizer
        )
    }
}

impl TrainingJobBuilder {
    /// Cap the global batch (small-dataset benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn max_global_batch(mut self, cap: u64) -> Self {
        assert!(cap > 0, "global batch cap must be positive");
        self.job.max_global_batch = Some(cap);
        self
    }

    /// Set the optimizer (default SGD+momentum).
    pub fn optimizer(mut self, optimizer: Optimizer) -> Self {
        self.job.optimizer = optimizer;
        self
    }

    /// Set the numeric policy (default AMP, as the submitted codes use).
    pub fn precision(mut self, precision: PrecisionPolicy) -> Self {
        self.job.precision = precision;
        self
    }

    /// Set the sustained-efficiency calibration (default [`Efficiency::tuned`]).
    pub fn efficiency(mut self, efficiency: Efficiency) -> Self {
        self.job.efficiency = efficiency;
        self
    }

    /// Set the all-reduce algorithm (default ring).
    pub fn allreduce(mut self, alg: AllReduceAlgorithm) -> Self {
        self.job.allreduce = alg;
        self
    }

    /// Set the comm/compute overlap fraction in `[0, 1]` (default 0.5).
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn comm_overlap(mut self, overlap: f64) -> Self {
        assert!((0.0..=1.0).contains(&overlap), "overlap must be in [0,1]");
        self.job.comm_overlap = overlap;
        self
    }

    /// Set the per-iteration host overhead (default 4 reference-core-ms).
    ///
    /// # Panics
    ///
    /// Panics if negative or not finite.
    pub fn host_step_core_secs(mut self, secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "host step cost must be finite, non-negative"
        );
        self.job.host_step_core_secs = secs;
        self
    }

    /// Set the GPU-count-independent host DRAM footprint (default 4 GiB).
    pub fn dram_base(mut self, bytes: Bytes) -> Self {
        self.job.dram_base = bytes;
        self
    }

    /// Set the per-GPU HBM overhead (default 1 GiB).
    pub fn hbm_overhead(mut self, bytes: Bytes) -> Self {
        self.job.hbm_overhead = bytes;
        self
    }

    /// Set the prefetch depth (default 2).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn prefetch_depth(mut self, depth: u64) -> Self {
        assert!(depth > 0, "prefetch depth must be positive");
        self.job.prefetch_depth = depth;
        self
    }

    /// Set the fixed per-iteration device overhead (default 2 ms).
    pub fn gpu_step_overhead(mut self, overhead: Seconds) -> Self {
        self.job.gpu_step_overhead = overhead;
        self
    }

    /// Set the gradient-accumulation period (default 1 = every iteration).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn allreduce_period(mut self, period: u64) -> Self {
        assert!(period > 0, "accumulation period must be positive");
        self.job.allreduce_period = period;
        self
    }

    /// Set the fixed per-step host work (default 0).
    ///
    /// # Panics
    ///
    /// Panics if negative or not finite.
    pub fn host_fixed_core_secs(mut self, secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "fixed host cost must be finite, non-negative"
        );
        self.job.host_fixed_core_secs = secs;
        self
    }

    /// Set the per-GPU polling-core count (default 0).
    ///
    /// # Panics
    ///
    /// Panics if negative or not finite.
    pub fn host_poll_cores(mut self, cores: f64) -> Self {
        assert!(
            cores.is_finite() && cores >= 0.0,
            "poll cores must be finite, non-negative"
        );
        self.job.host_poll_cores = cores;
        self
    }

    /// Finish building.
    pub fn build(self) -> TrainingJob {
        self.job
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlperf_data::DatasetId;
    use mlperf_hw::units::Bytes;
    use mlperf_models::zoo::ncf::ncf;

    fn job(per_gpu: u64, cap: Option<u64>) -> TrainingJob {
        let pipeline = InputPipeline::new(DatasetId::MovieLens20M, Bytes::new(16));
        let conv = ConvergenceModel::new(10.0, 1024, 0.0);
        let mut b = TrainingJob::builder("test", ncf(), pipeline, per_gpu, conv);
        if let Some(c) = cap {
            b = b.max_global_batch(c);
        }
        b.build()
    }

    #[test]
    fn uncapped_batch_scales_globally() {
        let j = job(256, None);
        assert_eq!(j.effective_per_gpu_batch(8), 256);
        assert_eq!(j.global_batch(8), 2048);
    }

    #[test]
    fn cap_shrinks_per_gpu_batch() {
        let j = job(1024, Some(2048));
        assert_eq!(j.effective_per_gpu_batch(1), 1024);
        assert_eq!(j.effective_per_gpu_batch(2), 1024);
        assert_eq!(j.effective_per_gpu_batch(4), 512);
        assert_eq!(j.effective_per_gpu_batch(8), 256);
        // Global batch saturates at the cap.
        assert_eq!(j.global_batch(8), 2048);
    }

    #[test]
    fn cap_never_zeroes_the_batch() {
        let j = job(64, Some(4));
        assert_eq!(j.effective_per_gpu_batch(8), 1);
    }

    #[test]
    fn convergence_penalty_grows_with_batch() {
        let c = ConvergenceModel::new(60.0, 256, 0.1);
        assert!((c.epochs_at(256) - 60.0).abs() < 1e-9);
        assert!((c.epochs_at(512) - 66.0).abs() < 1e-9);
        // Below reference: no bonus.
        assert!((c.epochs_at(128) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn run_cv_floors_at_seed_noise_and_grows_with_batch_sensitivity() {
        let insensitive = ConvergenceModel::new(60.0, 256, 0.0);
        assert!((insensitive.run_cv() - 0.02).abs() < 1e-12);
        let sensitive = ConvergenceModel::new(60.0, 256, 0.3);
        assert!(sensitive.run_cv() > insensitive.run_cv());
        assert!((sensitive.run_cv() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn precision_swap_copies() {
        let j = job(64, None);
        assert_eq!(j.precision(), PrecisionPolicy::Amp);
        let fp32 = j.with_precision(PrecisionPolicy::Fp32);
        assert_eq!(fp32.precision(), PrecisionPolicy::Fp32);
        assert_eq!(fp32.name(), j.name());
    }

    #[test]
    fn overlap_ablation() {
        let j = job(64, None);
        assert!(j.comm_overlap() > 0.0);
        assert_eq!(j.without_overlap().comm_overlap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "overlap must be in")]
    fn bad_overlap_rejected() {
        let pipeline = InputPipeline::new(DatasetId::MovieLens20M, Bytes::new(16));
        let conv = ConvergenceModel::new(10.0, 1024, 0.0);
        let _ = TrainingJob::builder("x", ncf(), pipeline, 1, conv).comm_overlap(1.5);
    }
}
