//! Deterministic fault injection and replay.
//!
//! A [`FaultPlan`] is a seeded schedule of failures — GPU death, link
//! flaps, thermal-throttle stragglers, host stalls — drawn through the
//! testkit's [`FaultScript`] so the whole scenario replays byte-identically
//! from its seed. [`replay`] walks the plan against a steady-state
//! [`StepReport`] on the DES [`EventQueue`](crate::des::EventQueue):
//! training advances step by step, checkpoints are written on the cadence
//! of a [`CheckpointSpec`], a fail-stop fault rolls the run back to the
//! last checkpoint (paying the restart cost), transient faults retry with
//! exponential backoff under a [`RetryPolicy`], and every second of
//! wall-clock is attributed to exactly one bucket of [`FaultStats`]:
//!
//! ```text
//! total = healthy + checkpoint + recomputed + stalled + restart
//! ```
//!
//! The determinism contract: equal `(plan seed, job, step report,
//! checkpoint spec, retry policy)` produce byte-identical [`FaultTrace`]s.
//! Faults are quantized to step boundaries (a throttle drawn mid-step
//! slows the *next* step) except stalls and failures, which interrupt the
//! in-flight step; events landing on the exact instant of a step boundary
//! resolve by the queue's FIFO tie-break, which is what pins the replay
//! bytes down.

use crate::checkpoint::CheckpointSpec;
use crate::des::EventQueue;
use crate::engine::StepReport;
use crate::job::TrainingJob;
use mlperf_hw::units::Seconds;
use mlperf_testkit::fault::FaultScript;
use std::fmt;

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop loss of one GPU: the run dies and restarts from the last
    /// checkpoint (a hot spare takes the ordinal's place, so the width is
    /// unchanged — width changes are the cluster layer's reaction).
    GpuFailure {
        /// The ordinal (within the run) that died.
        gpu: u32,
    },
    /// A transient interconnect outage: collectives fail and retry with
    /// backoff until the link returns. No-op on single-GPU runs.
    LinkFlap {
        /// How long the link stays down.
        duration: Seconds,
    },
    /// One GPU clocks down; the synchronous step waits for the straggler.
    ThermalThrottle {
        /// The straggling ordinal.
        gpu: u32,
        /// Clock fraction retained, in `(0, 1)` — 0.7 means 70% speed.
        factor: f64,
        /// How long the throttle lasts.
        duration: Seconds,
    },
    /// The host pauses feeding every GPU (page-cache collapse, daemon
    /// stall): the in-flight step stretches by the stall.
    HostStall {
        /// Length of the stall.
        duration: Seconds,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::GpuFailure { gpu } => write!(f, "gpu_failure gpu={gpu}"),
            FaultKind::LinkFlap { duration } => {
                write!(f, "link_flap duration={:.6}", duration.as_secs())
            }
            FaultKind::ThermalThrottle {
                gpu,
                factor,
                duration,
            } => write!(
                f,
                "thermal_throttle gpu={gpu} factor={factor:.6} duration={:.6}",
                duration.as_secs()
            ),
            FaultKind::HostStall { duration } => {
                write!(f, "host_stall duration={:.6}", duration.as_secs())
            }
        }
    }
}

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Absolute simulated time of the fault.
    pub at: Seconds,
    /// What fails.
    pub kind: FaultKind,
}

/// A seeded, replayable schedule of faults over a time horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    mtbf: Seconds,
    events: Vec<FaultEvent>,
    script_trace: Vec<u8>,
}

impl FaultPlan {
    /// Draw a plan for a run of up to `horizon` wall-clock on `n_gpus`
    /// GPUs with the given mean time between faults. Inter-arrivals are
    /// exponential; each arrival picks a kind (GPU failure, link flap,
    /// throttle, host stall) and its parameters through a seeded
    /// [`FaultScript`], so equal seeds yield byte-identical plans.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpus` is zero or `horizon`/`mtbf` is nonpositive.
    pub fn generate(seed: u64, horizon: Seconds, mtbf: Seconds, n_gpus: u32) -> Self {
        assert!(n_gpus > 0, "need at least one GPU");
        assert!(horizon.as_secs() > 0.0, "horizon must be positive");
        assert!(mtbf.as_secs() > 0.0, "MTBF must be positive");
        let mut script = FaultScript::new(seed);
        let mut events = Vec::new();
        let mut t = 0.0;
        loop {
            t += script.draw_exponential("interarrival", mtbf.as_secs());
            if t >= horizon.as_secs() {
                break;
            }
            let kind = match script.draw_index("kind", 4) {
                0 => FaultKind::GpuFailure {
                    gpu: script.draw_index("victim", n_gpus as usize) as u32,
                },
                1 => FaultKind::LinkFlap {
                    // 1–30 s outage.
                    duration: Seconds::new(1.0 + 29.0 * script.draw_unit("flap_len")),
                },
                2 => FaultKind::ThermalThrottle {
                    gpu: script.draw_index("victim", n_gpus as usize) as u32,
                    // Retain 50–90% of clocks.
                    factor: 0.5 + 0.4 * script.draw_unit("throttle"),
                    // 1–10 min of degraded clocks.
                    duration: Seconds::new(60.0 + 540.0 * script.draw_unit("throttle_len")),
                },
                _ => FaultKind::HostStall {
                    // 5–60 s stall.
                    duration: Seconds::new(5.0 + 55.0 * script.draw_unit("stall_len")),
                },
            };
            events.push(FaultEvent {
                at: Seconds::new(t),
                kind,
            });
        }
        FaultPlan {
            seed,
            mtbf,
            events,
            script_trace: script.trace_bytes(),
        }
    }

    /// A plan with explicit events (tests, regression pins). The script
    /// trace records only the seed.
    pub fn from_events(seed: u64, mtbf: Seconds, events: Vec<FaultEvent>) -> Self {
        let script_trace = FaultScript::new(seed).trace_bytes();
        FaultPlan {
            seed,
            mtbf,
            events,
            script_trace,
        }
    }

    /// The seed the plan was drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The mean time between faults the plan was drawn at.
    pub fn mtbf(&self) -> Seconds {
        self.mtbf
    }

    /// The scheduled faults, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The byte-exact draw log behind the plan (the seeded-replay
    /// contract: equal seeds ⇒ equal bytes).
    pub fn script_trace(&self) -> &[u8] {
        &self.script_trace
    }
}

/// Backoff schedule for transient-fault retries: attempt `i` waits
/// `base · factor^i`; a fault outlasting `max_retries` attempts escalates
/// to a fail-stop restart from the last checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First retry delay.
    pub base: Seconds,
    /// Multiplier per attempt (≥ 1).
    pub factor: f64,
    /// Attempts before escalating.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Seconds::new(1.0),
            factor: 2.0,
            max_retries: 6,
        }
    }
}

/// Everything [`replay`] needs besides the job and its step report.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Checkpoint cadence and costs.
    pub checkpoint: CheckpointSpec,
    /// Transient-fault retry/backoff policy.
    pub retry: RetryPolicy,
}

/// Fault/recovery accounting for one replayed run. The time buckets
/// partition the total wall-clock exactly (asserted by the replay).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStats {
    /// Fail-stop GPU losses.
    pub gpu_failures: u32,
    /// Transient link outages.
    pub link_flaps: u32,
    /// Thermal-throttle windows applied.
    pub throttle_events: u32,
    /// Host stalls applied.
    pub host_stalls: u32,
    /// Restarts from checkpoint (failures + escalated transients).
    pub restarts: u32,
    /// Transient retry attempts across all flaps.
    pub retries: u32,
    /// Checkpoints written.
    pub checkpoints_written: u32,
    /// Optimizer steps committed (equals the job's total steps).
    pub completed_steps: u64,
    /// Wall-clock of steps that counted toward completion.
    pub healthy_time: Seconds,
    /// Wall-clock spent writing checkpoints.
    pub checkpoint_time: Seconds,
    /// Wall-clock of steps rolled back and re-run (lost work).
    pub recomputed_time: Seconds,
    /// Wall-clock lost to stalls and retry backoff.
    pub stalled_time: Seconds,
    /// Wall-clock spent restarting (relaunch + checkpoint read).
    pub restart_time: Seconds,
    /// End-to-end wall-clock with faults.
    pub total_time: Seconds,
}

impl FaultStats {
    /// Everything the run paid beyond healthy compute.
    pub fn overhead(&self) -> Seconds {
        self.checkpoint_time + self.recomputed_time + self.stalled_time + self.restart_time
    }

    /// `total / healthy` — 1.0 means the faults were free.
    pub fn slowdown(&self) -> f64 {
        self.total_time.as_secs() / self.healthy_time.as_secs()
    }
}

/// The byte-exact replay log: the plan's draw trace followed by one line
/// per replay action, all at fixed precision — equal seeds produce equal
/// bytes at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTrace {
    lines: Vec<String>,
    script_trace: Vec<u8>,
}

impl FaultTrace {
    fn new(plan: &FaultPlan) -> Self {
        FaultTrace {
            lines: Vec::new(),
            script_trace: plan.script_trace().to_vec(),
        }
    }

    fn push(&mut self, at: Seconds, line: &str) {
        self.lines.push(format!("t={:.6} {line}", at.as_secs()));
    }

    /// The replay action lines (without the draw log).
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Render the full trace: the plan's draw log, then the replay log.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.script_trace.clone();
        for line in &self.lines {
            out.extend_from_slice(line.as_bytes());
            out.push(b'\n');
        }
        out
    }
}

/// What a fault-enabled [`Simulator::execute`](crate::Simulator::execute)
/// attaches to its [`RunOutcome`](crate::RunOutcome): the accounting and
/// the byte-exact replay trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOutcome {
    /// Fault/recovery accounting.
    pub stats: FaultStats,
    /// The replayable trace (plan draw log + replay actions).
    pub trace: FaultTrace,
}

/// An active degradation window (throttle or flap slowdown).
struct ActiveEffect {
    until: Seconds,
    step_multiplier: f64,
}

enum ReplayEvent {
    StepDone { generation: u64 },
    Fault { idx: usize },
}

/// Replay `config.plan` against the steady-state `step` report of `job`,
/// running `total_steps` optimizer steps to completion. Returns the
/// accounting and the byte-exact trace.
///
/// # Panics
///
/// Panics if `total_steps` is zero or the internal time-accounting
/// identity breaks (a bug, not an input error).
pub fn replay(
    config: &FaultConfig,
    job: &TrainingJob,
    step: &StepReport,
    total_steps: u64,
) -> (FaultStats, FaultTrace) {
    assert!(total_steps > 0, "nothing to replay");
    let base_step = step.step_time;
    let compute_share = (step.compute_time.as_secs() / step.step_time.as_secs()).min(1.0);
    let interval_steps = config.checkpoint.interval_steps(step);
    let write_cost = config.checkpoint.write_cost(job);
    let restart_cost = config.checkpoint.restart_cost(job);

    let mut q: EventQueue<ReplayEvent> = EventQueue::new();
    for (idx, _) in config.plan.events().iter().enumerate() {
        q.schedule(config.plan.events()[idx].at, ReplayEvent::Fault { idx });
    }

    let mut stats = FaultStats {
        gpu_failures: 0,
        link_flaps: 0,
        throttle_events: 0,
        host_stalls: 0,
        restarts: 0,
        retries: 0,
        checkpoints_written: 0,
        completed_steps: 0,
        healthy_time: Seconds::ZERO,
        checkpoint_time: Seconds::ZERO,
        recomputed_time: Seconds::ZERO,
        stalled_time: Seconds::ZERO,
        restart_time: Seconds::ZERO,
        total_time: Seconds::ZERO,
    };
    let mut trace = FaultTrace::new(&config.plan);
    trace.push(
        Seconds::ZERO,
        &format!(
            "replay steps={total_steps} step_time={:.6} ckpt_steps={interval_steps} \
             write_cost={:.6} restart_cost={:.6}",
            base_step.as_secs(),
            write_cost.as_secs(),
            restart_cost.as_secs()
        ),
    );

    let mut effects: Vec<ActiveEffect> = Vec::new();
    let mut generation = 0u64;
    // Uncommitted step wall-clock since the last checkpoint; committed to
    // `healthy_time` at checkpoints/completion, to `recomputed_time` on
    // rollback.
    let mut pending_work = Seconds::ZERO;
    let mut committed_steps = 0u64;
    let mut last_checkpoint_step = 0u64;
    // The in-flight step: when it started, when it will finish, and how
    // much of that span is stall extension (already attributed to
    // `stalled_time`) rather than step work.
    let mut step_start = Seconds::ZERO;
    let mut step_end;
    let mut inflight_stall = Seconds::ZERO;

    let step_duration = |effects: &[ActiveEffect], start: Seconds| {
        let mult: f64 = effects
            .iter()
            .filter(|e| e.until > start)
            .map(|e| e.step_multiplier)
            .product();
        base_step.scale(mult)
    };

    step_end = step_start + step_duration(&effects, step_start);
    q.schedule(step_end, ReplayEvent::StepDone { generation });

    // Roll back to the last checkpoint at fault time `at`: the in-flight
    // partial step and all uncommitted steps become recomputed work, any
    // stall attributed to the doomed step is un-attributed (its wall-clock
    // is swept into the recompute bucket), the restart cost is paid, and
    // the run resumes from the checkpoint.
    let restart = |at: Seconds,
                   stats: &mut FaultStats,
                   trace: &mut FaultTrace,
                   pending_work: &mut Seconds,
                   committed_steps: &mut u64,
                   step_start: &mut Seconds,
                   inflight_stall: &mut Seconds,
                   last_checkpoint_step: u64| {
        let partial = if at > *step_start {
            at - *step_start
        } else {
            Seconds::ZERO
        };
        stats.stalled_time = stats.stalled_time - *inflight_stall;
        *inflight_stall = Seconds::ZERO;
        stats.recomputed_time += *pending_work + partial;
        stats.restart_time += restart_cost;
        stats.restarts += 1;
        trace.push(
            at,
            &format!(
                "restart from_step={last_checkpoint_step} lost_steps={} lost_time={:.6}",
                *committed_steps - last_checkpoint_step,
                (*pending_work + partial).as_secs()
            ),
        );
        *pending_work = Seconds::ZERO;
        *committed_steps = last_checkpoint_step;
        // Resume once the partial step's wall-clock and the restart are
        // accounted: at (covers the partial) + restart cost.
        *step_start = at.max(*step_start) + restart_cost;
    };

    while let Some((at, event)) = q.pop() {
        match event {
            ReplayEvent::StepDone { generation: g } if g == generation => {
                pending_work += (step_end - step_start) - inflight_stall;
                inflight_stall = Seconds::ZERO;
                committed_steps += 1;
                stats.completed_steps = committed_steps;
                let mut next_start = step_end;
                if committed_steps >= total_steps {
                    stats.healthy_time += pending_work;
                    stats.total_time = step_end;
                    break;
                }
                if committed_steps - last_checkpoint_step >= interval_steps {
                    stats.checkpoints_written += 1;
                    stats.checkpoint_time += write_cost;
                    stats.healthy_time += pending_work;
                    pending_work = Seconds::ZERO;
                    last_checkpoint_step = committed_steps;
                    trace.push(at, &format!("checkpoint step={committed_steps}"));
                    next_start += write_cost;
                }
                step_start = next_start;
                step_end = step_start + step_duration(&effects, step_start);
                generation += 1;
                q.schedule(step_end, ReplayEvent::StepDone { generation });
            }
            ReplayEvent::StepDone { .. } => {} // stale: superseded by a fault
            ReplayEvent::Fault { idx } => {
                let fault = config.plan.events()[idx];
                trace.push(at, &format!("fault {}", fault.kind));
                match fault.kind {
                    FaultKind::GpuFailure { .. } => {
                        stats.gpu_failures += 1;
                        restart(
                            at,
                            &mut stats,
                            &mut trace,
                            &mut pending_work,
                            &mut committed_steps,
                            &mut step_start,
                            &mut inflight_stall,
                            last_checkpoint_step,
                        );
                        // The replacement GPU starts cool: degradation
                        // windows do not survive a restart.
                        effects.clear();
                        step_end = step_start + step_duration(&effects, step_start);
                        generation += 1;
                        q.schedule(step_end, ReplayEvent::StepDone { generation });
                    }
                    FaultKind::LinkFlap { duration } => {
                        stats.link_flaps += 1;
                        if step.n_gpus <= 1 {
                            trace.push(at, "flap ignored single_gpu");
                            continue;
                        }
                        // Retry with exponential backoff until the link is
                        // back or the policy gives up.
                        let mut waited = 0.0;
                        let mut attempts = 0u32;
                        while waited < duration.as_secs() && attempts < config.retry.max_retries {
                            waited += config.retry.base.as_secs()
                                * config.retry.factor.powi(attempts as i32);
                            attempts += 1;
                        }
                        stats.retries += attempts;
                        if waited < duration.as_secs() {
                            trace.push(at, &format!("flap escalated attempts={attempts}"));
                            restart(
                                at,
                                &mut stats,
                                &mut trace,
                                &mut pending_work,
                                &mut committed_steps,
                                &mut step_start,
                                &mut inflight_stall,
                                last_checkpoint_step,
                            );
                            step_end = step_start + step_duration(&effects, step_start);
                        } else {
                            let delay = Seconds::new(waited);
                            stats.stalled_time += delay;
                            inflight_stall += delay;
                            trace.push(
                                at,
                                &format!("flap retried attempts={attempts} delay={waited:.6}"),
                            );
                            step_end += delay;
                        }
                        generation += 1;
                        q.schedule(step_end, ReplayEvent::StepDone { generation });
                    }
                    FaultKind::ThermalThrottle {
                        factor, duration, ..
                    } => {
                        stats.throttle_events += 1;
                        // The straggler stretches only the compute phase of
                        // the synchronous step; comm/opt are unchanged.
                        let mult = 1.0 + compute_share * (1.0 / factor - 1.0);
                        effects.push(ActiveEffect {
                            until: at + duration,
                            step_multiplier: mult,
                        });
                        trace.push(at, &format!("throttle mult={mult:.6}"));
                    }
                    FaultKind::HostStall { duration } => {
                        stats.host_stalls += 1;
                        stats.stalled_time += duration;
                        inflight_stall += duration;
                        step_end += duration;
                        generation += 1;
                        q.schedule(step_end, ReplayEvent::StepDone { generation });
                    }
                }
            }
        }
    }

    assert!(
        stats.completed_steps == total_steps,
        "replay ended early: {} of {total_steps} steps",
        stats.completed_steps
    );
    let accounted = stats.healthy_time
        + stats.checkpoint_time
        + stats.recomputed_time
        + stats.stalled_time
        + stats.restart_time;
    let drift = (accounted.as_secs() - stats.total_time.as_secs()).abs();
    assert!(
        drift <= 1e-6 * stats.total_time.as_secs().max(1.0),
        "time buckets do not partition the run: {} vs {}",
        accounted.as_secs(),
        stats.total_time.as_secs()
    );
    trace.push(
        stats.total_time,
        &format!(
            "done total={:.6} healthy={:.6} ckpt={:.6} recomputed={:.6} stalled={:.6} \
             restart={:.6} restarts={} retries={} checkpoints={}",
            stats.total_time.as_secs(),
            stats.healthy_time.as_secs(),
            stats.checkpoint_time.as_secs(),
            stats.recomputed_time.as_secs(),
            stats.stalled_time.as_secs(),
            stats.restart_time.as_secs(),
            stats.restarts,
            stats.retries,
            stats.checkpoints_written
        ),
    );
    (stats, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{RunSpec, Simulator};
    use crate::job::ConvergenceModel;
    use mlperf_data::storage::StorageDevice;
    use mlperf_data::{DatasetId, InputPipeline};
    use mlperf_hw::systems::SystemId;
    use mlperf_hw::units::Bytes;
    use mlperf_models::zoo::resnet::resnet50;

    fn resnet_job() -> TrainingJob {
        let pipeline = InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2));
        TrainingJob::builder(
            "resnet50",
            resnet50(),
            pipeline,
            96,
            ConvergenceModel::new(63.0, 768, 0.0),
        )
        .build()
    }

    fn report(n: u32) -> StepReport {
        let system = SystemId::Dss8440.spec();
        Simulator::new(&system)
            .execute(&RunSpec::on_first(resnet_job(), n))
            .unwrap()
            .report
    }

    fn config(plan: FaultPlan) -> FaultConfig {
        FaultConfig {
            plan,
            checkpoint: CheckpointSpec::new(Seconds::from_minutes(2.0), StorageDevice::NvmeSsd),
            retry: RetryPolicy::default(),
        }
    }

    #[test]
    fn plan_generation_is_seed_deterministic() {
        let horizon = Seconds::from_hours(4.0);
        let mtbf = Seconds::from_minutes(20.0);
        let a = FaultPlan::generate(11, horizon, mtbf, 8);
        let b = FaultPlan::generate(11, horizon, mtbf, 8);
        assert_eq!(a, b);
        assert_eq!(a.script_trace(), b.script_trace());
        let c = FaultPlan::generate(12, horizon, mtbf, 8);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn plan_respects_horizon_and_mtbf() {
        let horizon = Seconds::from_hours(10.0);
        let mtbf = Seconds::from_minutes(30.0);
        let plan = FaultPlan::generate(3, horizon, mtbf, 4);
        assert!(!plan.events().is_empty());
        for e in plan.events() {
            assert!(e.at.as_secs() < horizon.as_secs());
        }
        // ~20 expected arrivals; allow a wide band.
        let n = plan.events().len();
        assert!((8..=40).contains(&n), "{n} arrivals");
    }

    #[test]
    fn fault_free_replay_is_pure_checkpoint_tax() {
        let step = report(4);
        let mut cfg = config(FaultPlan::from_events(
            0,
            Seconds::from_hours(1.0),
            Vec::new(),
        ));
        // Checkpoint every ~500 steps so a 2 000-step run writes a few.
        cfg.checkpoint.interval = step.step_time.scale(500.0);
        let total_steps = 2_000;
        let (stats, _) = replay(&cfg, &resnet_job(), &step, total_steps);
        assert_eq!(stats.restarts, 0);
        assert_eq!(stats.recomputed_time, Seconds::ZERO);
        assert_eq!(stats.stalled_time, Seconds::ZERO);
        let ideal = step.step_time.scale(total_steps as f64);
        assert!((stats.healthy_time.as_secs() - ideal.as_secs()).abs() < 1e-6);
        assert!(stats.checkpoints_written > 0);
        assert!(
            (stats.total_time.as_secs()
                - ideal.as_secs()
                - stats.checkpoint_time.as_secs())
            .abs()
                < 1e-6
        );
    }

    #[test]
    fn gpu_death_restarts_from_last_checkpoint() {
        let step = report(4);
        let interval = Seconds::from_minutes(2.0);
        let per_ckpt =
            CheckpointSpec::new(interval, StorageDevice::NvmeSsd).interval_steps(&step);
        // Kill a GPU mid-way through the second checkpoint window.
        let kill_at = step.step_time.scale(1.5 * per_ckpt as f64);
        let cfg = config(FaultPlan::from_events(
            1,
            Seconds::from_hours(1.0),
            vec![FaultEvent {
                at: kill_at,
                kind: FaultKind::GpuFailure { gpu: 2 },
            }],
        ));
        let total_steps = 3 * per_ckpt;
        let (stats, trace) = replay(&cfg, &resnet_job(), &step, total_steps);
        assert_eq!(stats.gpu_failures, 1);
        assert_eq!(stats.restarts, 1);
        // Roughly half a window of work (plus the partial step) rolled back.
        let half_window = step.step_time.scale(0.5 * per_ckpt as f64);
        let lost = stats.recomputed_time.as_secs();
        assert!(
            lost >= half_window.as_secs() * 0.9 && lost <= half_window.as_secs() * 1.3,
            "lost {lost} vs window {}",
            half_window.as_secs()
        );
        let text = String::from_utf8(trace.to_bytes()).unwrap();
        assert!(text.contains("gpu_failure gpu=2"));
        assert!(text.contains(&format!("restart from_step={per_ckpt}")));
    }

    #[test]
    fn link_flap_on_one_gpu_is_a_noop() {
        let step = report(1);
        let cfg = config(FaultPlan::from_events(
            2,
            Seconds::from_hours(1.0),
            vec![FaultEvent {
                at: step.step_time.scale(5.5),
                kind: FaultKind::LinkFlap {
                    duration: Seconds::new(10.0),
                },
            }],
        ));
        let (stats, _) = replay(&cfg, &resnet_job(), &step, 100);
        assert_eq!(stats.link_flaps, 1);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.stalled_time, Seconds::ZERO);
    }

    #[test]
    fn link_flap_retries_cover_the_outage() {
        let step = report(4);
        let outage = Seconds::new(10.0);
        let cfg = config(FaultPlan::from_events(
            2,
            Seconds::from_hours(1.0),
            vec![FaultEvent {
                at: step.step_time.scale(5.5),
                kind: FaultKind::LinkFlap { duration: outage },
            }],
        ));
        let (stats, _) = replay(&cfg, &resnet_job(), &step, 100);
        assert_eq!(stats.link_flaps, 1);
        assert!(stats.retries >= 1);
        assert_eq!(stats.restarts, 0);
        // Backoff waits at least as long as the outage (1+2+4+8 covers 10).
        assert!(stats.stalled_time >= outage);
    }

    #[test]
    fn flap_outlasting_backoff_escalates_to_restart() {
        let step = report(4);
        let retry = RetryPolicy {
            base: Seconds::new(0.5),
            factor: 1.0,
            max_retries: 3,
        };
        let mut cfg = config(FaultPlan::from_events(
            2,
            Seconds::from_hours(1.0),
            vec![FaultEvent {
                at: step.step_time.scale(5.5),
                kind: FaultKind::LinkFlap {
                    duration: Seconds::new(60.0),
                },
            }],
        ));
        cfg.retry = retry;
        let (stats, trace) = replay(&cfg, &resnet_job(), &step, 100);
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.retries, 3);
        let text = String::from_utf8(trace.to_bytes()).unwrap();
        assert!(text.contains("flap escalated attempts=3"));
    }

    #[test]
    fn throttle_slows_future_steps_only() {
        let step = report(4);
        let cfg = config(FaultPlan::from_events(
            4,
            Seconds::from_hours(1.0),
            vec![FaultEvent {
                at: step.step_time.scale(10.5),
                kind: FaultKind::ThermalThrottle {
                    gpu: 0,
                    factor: 0.5,
                    duration: step.step_time.scale(20.0),
                },
            }],
        ));
        let total_steps = 50;
        let (stats, _) = replay(&cfg, &resnet_job(), &step, total_steps);
        let ideal = step.step_time.scale(total_steps as f64);
        assert!(stats.healthy_time > ideal, "straggler did not stretch steps");
        assert_eq!(stats.restarts, 0);
        // Bounded: even halving clocks at most doubles the affected window.
        assert!(stats.healthy_time.as_secs() < 1.5 * ideal.as_secs());
    }

    #[test]
    fn host_stall_stretches_the_run_by_its_duration() {
        let step = report(4);
        let stall = Seconds::new(30.0);
        let cfg = config(FaultPlan::from_events(
            5,
            Seconds::from_hours(1.0),
            vec![FaultEvent {
                at: step.step_time.scale(3.5),
                kind: FaultKind::HostStall { duration: stall },
            }],
        ));
        let baseline = {
            let clean = config(FaultPlan::from_events(5, Seconds::from_hours(1.0), Vec::new()));
            replay(&clean, &resnet_job(), &step, 200).0.total_time
        };
        let (stats, _) = replay(&cfg, &resnet_job(), &step, 200);
        assert_eq!(stats.host_stalls, 1);
        let delta = stats.total_time.as_secs() - baseline.as_secs();
        assert!((delta - stall.as_secs()).abs() < 1e-6, "delta {delta}");
    }

    #[test]
    fn replay_is_byte_deterministic() {
        let step = report(8);
        let plan = FaultPlan::generate(77, Seconds::from_hours(2.0), Seconds::from_minutes(10.0), 8);
        let cfg = config(plan);
        let (s1, t1) = replay(&cfg, &resnet_job(), &step, 20_000);
        let (s2, t2) = replay(&cfg, &resnet_job(), &step, 20_000);
        assert_eq!(s1, s2);
        assert_eq!(t1.to_bytes(), t2.to_bytes());
        assert!(s1.restarts + s1.retries + s1.throttle_events + s1.host_stalls > 0);
    }
}
