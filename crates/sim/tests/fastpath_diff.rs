//! Differential battery: the analytic fast path vs the full DES engine.
//!
//! `Simulator::execute_fast` promises that whenever it returns a result at
//! all, that result is **bit-identical** to `Simulator::execute` — same
//! step report, same typed errors, same fault statistics. This battery
//! fuzzes ~500 (model, system, GPUs, batch, precision, depth, pipeline)
//! cells and holds the fast path to that promise, plus targeted cases for
//! the soundness direction: cells that genuinely stall must be declined,
//! never mispriced.

use mlperf_data::storage::StorageDevice;
use mlperf_data::{DatasetId, InputPipeline};
use mlperf_hw::systems::SystemId;
use mlperf_hw::units::{Bytes, Seconds};
use mlperf_models::zoo::detection::ssd300;
use mlperf_models::zoo::ncf::ncf;
use mlperf_models::zoo::resnet::{resnet18_cifar, resnet50};
use mlperf_models::{ModelGraph, Optimizer, PrecisionPolicy};
use mlperf_sim::fault::{FaultConfig, FaultPlan, RetryPolicy};
use mlperf_sim::{CheckpointSpec, ConvergenceModel, RunSpec, Simulator, TrainingJob};
use mlperf_testkit::rng::Rng;

const SYSTEMS: [SystemId; 6] = [
    SystemId::T640,
    SystemId::C4140B,
    SystemId::C4140K,
    SystemId::C4140M,
    SystemId::R940Xa,
    SystemId::Dss8440,
];

/// One fuzzed model pick: the graph plus a realistic input record.
fn model_pick(rng: &mut Rng) -> (ModelGraph, DatasetId, u64) {
    match rng.gen_range(0..4u32) {
        0 => (resnet18_cifar(), DatasetId::Cifar10, 32 * 32 * 3 * 2),
        1 => (resnet50(), DatasetId::ImageNet, 224 * 224 * 3 * 2),
        2 => (ssd300(), DatasetId::Coco, 300 * 300 * 3 * 2),
        _ => (ncf(), DatasetId::MovieLens20M, 2 * 8),
    }
}

fn fuzzed_job(rng: &mut Rng) -> TrainingJob {
    let (model, dataset, base_bytes) = model_pick(rng);
    // Occasionally blow the record size up so the host pipeline dominates
    // and the fast path has something real to decline.
    let bytes_scale = if rng.gen_range(0..8u32) == 0 {
        1 + rng.gen_range(0..512u32) as u64
    } else {
        1 + rng.gen_range(0..4u32) as u64
    };
    let batch = 1u64 << rng.gen_range(0..9u32);
    let precision = if rng.gen_range(0..2u32) == 0 {
        PrecisionPolicy::Amp
    } else {
        PrecisionPolicy::Fp32
    };
    let optimizer = if rng.gen_range(0..2u32) == 0 {
        Optimizer::SgdMomentum
    } else {
        Optimizer::Adam
    };
    TrainingJob::builder(
        "fuzzed",
        model,
        InputPipeline::new(dataset, Bytes::new(base_bytes * bytes_scale)),
        batch,
        ConvergenceModel::new(10.0, 512, 0.0),
    )
    .precision(precision)
    .optimizer(optimizer)
    .prefetch_depth(1 + rng.gen_range(0..4u32) as u64)
    .build()
}

/// The core contract over fuzzed cells: `Some` ⇒ bit-identical outcome
/// with zero data stall, `Err` ⇒ the identical error, `None` ⇒ no claim.
#[test]
fn fast_path_agrees_with_des_on_fuzzed_cells() {
    let specs: Vec<_> = SYSTEMS.iter().map(|s| s.spec()).collect();
    let mut rng = Rng::new(0xfa57_d1ff);
    let (mut hits, mut misses, mut errors) = (0u32, 0u32, 0u32);
    for trial in 0..500 {
        let system = &specs[rng.gen_range(0..SYSTEMS.len() as u32) as usize];
        let sim = Simulator::new(system);
        let max_gpus = system.topology().gpu_count() as u32;
        let n = 1 + rng.gen_range(0..max_gpus);
        let spec = RunSpec::on_first(fuzzed_job(&mut rng), n);
        let fast = sim.execute_fast(&spec);
        let slow = sim.execute(&spec);
        match (fast, slow) {
            (Ok(Some(f)), Ok(s)) => {
                assert_eq!(f, s, "trial {trial}: fast outcome diverged from DES");
                assert_eq!(f.report.data_stall, Seconds::ZERO);
                hits += 1;
            }
            (Ok(None), _) => misses += 1,
            (Err(ef), Err(es)) => {
                assert_eq!(ef, es, "trial {trial}: error mismatch");
                errors += 1;
            }
            (f, s) => panic!("trial {trial}: fast {f:?} disagrees with DES {s:?}"),
        }
    }
    // The battery must exercise all three verdicts to mean anything.
    assert!(hits >= 100, "only {hits} fast-path hits in 500 trials");
    assert!(misses >= 1, "no cell ever fell back to DES");
    assert!(errors >= 1, "no cell ever errored (OOM cells expected)");
}

/// A host-bound cell (enormous records, shallow prefetch) genuinely
/// stalls; the fast path must decline it rather than misprice the stall.
#[test]
fn host_bound_cell_falls_back_to_des() {
    let system = SystemId::T640.spec();
    let sim = Simulator::new(&system);
    let job = TrainingJob::builder(
        "host-bound",
        resnet18_cifar(),
        InputPipeline::new(DatasetId::Cifar10, Bytes::new(32 * 32 * 3 * 2 * 4096)),
        256,
        ConvergenceModel::new(10.0, 512, 0.0),
    )
    .prefetch_depth(1)
    .build();
    let spec = RunSpec::on_first(job, 4);
    assert_eq!(sim.execute_fast(&spec).unwrap(), None);
    let slow = sim.execute(&spec).unwrap();
    assert!(
        slow.report.data_stall.as_secs() > 0.0,
        "cell was supposed to stall; the fast path declined a free lunch"
    );
}

/// Traced runs always take the DES loop — the fast path has no timeline.
#[test]
fn traced_spec_is_never_fast() {
    let system = SystemId::C4140K.spec();
    let sim = Simulator::new(&system);
    let job = TrainingJob::builder(
        "traced",
        resnet18_cifar(),
        InputPipeline::new(DatasetId::Cifar10, Bytes::new(32 * 32 * 3 * 2)),
        128,
        ConvergenceModel::new(10.0, 512, 0.0),
    )
    .build();
    let spec = RunSpec::on_first(job, 2).traced();
    assert_eq!(sim.execute_fast(&spec).unwrap(), None);
}

/// Fault replay is post-processing of the steady state, so it must ride
/// the fast path unchanged: statistics and trace bytes bit-identical.
#[test]
fn fault_statistics_ride_the_fast_path() {
    let system = SystemId::C4140K.spec();
    let sim = Simulator::new(&system);
    let job = TrainingJob::builder(
        "faulted",
        resnet50(),
        InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2)),
        64,
        ConvergenceModel::new(5.0, 512, 0.0),
    )
    .build();
    let cfg = FaultConfig {
        plan: FaultPlan::generate(7, Seconds::from_minutes(60.0), Seconds::from_minutes(7.0), 4),
        checkpoint: CheckpointSpec::new(Seconds::from_minutes(2.0), StorageDevice::NvmeSsd),
        retry: RetryPolicy::default(),
    };
    let spec = RunSpec::on_first(job, 4).with_faults(cfg);
    let fast = sim
        .execute_fast(&spec)
        .unwrap()
        .expect("compute-bound resnet cell should be fast-path eligible");
    let slow = sim.execute(&spec).unwrap();
    assert_eq!(fast, slow);
    assert!(fast.faults.is_some());
}

/// Eligibility and agreement hold under non-default simulation windows.
#[test]
fn window_overrides_agree_too() {
    let system = SystemId::Dss8440.spec();
    let job = TrainingJob::builder(
        "windowed",
        resnet50(),
        InputPipeline::new(DatasetId::ImageNet, Bytes::new(224 * 224 * 3 * 2)),
        32,
        ConvergenceModel::new(5.0, 512, 0.0),
    )
    .build();
    for (w, m) in [(1, 1), (2, 5), (16, 128)] {
        let sim = Simulator::new(&system).with_window(w, m);
        let spec = RunSpec::on_first(job.clone(), 8);
        if let Some(fast) = sim.execute_fast(&spec).unwrap() {
            assert_eq!(fast, sim.execute(&spec).unwrap(), "window ({w},{m})");
        }
    }
}
