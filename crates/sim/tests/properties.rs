//! Property-based tests for the simulation engine.

use mlperf_data::{DatasetId, InputPipeline};
use mlperf_hw::systems::SystemId;
use mlperf_hw::topology::{P2pClass, Path, PeerPath};
use mlperf_hw::units::{Bandwidth, Bytes, Seconds};
use mlperf_models::zoo::resnet::resnet18_cifar;
use mlperf_models::Optimizer;
use mlperf_sim::allreduce::{allreduce_time, ring_wire_bytes_per_gpu, AllReduceAlgorithm};
use mlperf_sim::des::{EventQueue, FifoResource};
use mlperf_sim::{train_on_first, ConvergenceModel, RunSpec, Simulator, TrainingJob};
use mlperf_testkit::prop::*;

fn peer(gb: f64) -> PeerPath {
    PeerPath {
        class: P2pClass::NvLinkDirect,
        bandwidth: Bandwidth::from_gb_per_sec(gb),
        latency: Seconds::from_micros(2.0),
        path: Path {
            nodes: Vec::new(),
            links: Vec::new(),
        },
    }
}

mlperf_testkit::properties! {
    /// All-reduce time is monotone in payload and antitone in bandwidth,
    /// for every algorithm.
    #[test]
    fn allreduce_monotone(
        bytes in 1u64..1 << 32,
        extra in 0u64..1 << 32,
        n in 2u64..=16,
        bw in 1.0f64..200.0
    ) {
        for alg in [AllReduceAlgorithm::Ring, AllReduceAlgorithm::Tree, AllReduceAlgorithm::Naive] {
            let t_small = allreduce_time(alg, Bytes::new(bytes), n, &peer(bw));
            let t_big = allreduce_time(alg, Bytes::new(bytes + extra), n, &peer(bw));
            prop_assert!(t_big.as_secs() >= t_small.as_secs(), "{alg}");
            let t_fast = allreduce_time(alg, Bytes::new(bytes), n, &peer(bw * 2.0));
            prop_assert!(t_fast.as_secs() <= t_small.as_secs(), "{alg}");
        }
    }

    /// Ring wire bytes are bounded by 2B and increase with N.
    #[test]
    fn ring_wire_bounds(bytes in 1u64..1 << 40, n in 2u64..=64) {
        let w = ring_wire_bytes_per_gpu(Bytes::new(bytes), n);
        prop_assert!(w.as_u64() <= 2 * bytes);
        prop_assert!(w.as_u64() >= bytes, "ring moves at least B for n >= 2");
        let w_next = ring_wire_bytes_per_gpu(Bytes::new(bytes), n + 1);
        prop_assert!(w_next >= w);
    }

    /// The event queue is a stable priority queue: events pop in
    /// non-decreasing time order and same-time events keep insertion order.
    #[test]
    fn event_queue_ordering(times in vec_of(0u32..1000, 1usize..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Seconds::new(t as f64), i);
        }
        let mut last_t = -1.0;
        let mut last_seq_at_t: i64 = -1;
        while let Some((t, seq)) = q.pop() {
            let tv = t.as_secs();
            prop_assert!(tv >= last_t);
            if (tv - last_t).abs() < f64::EPSILON {
                prop_assert!((seq as i64) > last_seq_at_t, "FIFO violated at t={tv}");
            }
            last_t = tv;
            last_seq_at_t = seq as i64;
        }
    }

    /// A FIFO resource's busy time equals the sum of service times, and
    /// completions are non-decreasing for non-decreasing requests.
    #[test]
    fn fifo_resource_conservation(
        reqs in vec_of((0.0f64..100.0, 0.01f64..10.0), 1usize..50)
    ) {
        let mut sorted = reqs.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut r = FifoResource::new();
        let mut total = 0.0;
        let mut last_done = 0.0;
        for (at, dur) in sorted {
            let done = r.serve(Seconds::new(at), Seconds::new(dur));
            prop_assert!(done.as_secs() >= at + dur - 1e-12);
            prop_assert!(done.as_secs() >= last_done);
            last_done = done.as_secs();
            total += dur;
        }
        prop_assert!((r.busy().as_secs() - total).abs() < 1e-9);
    }

    /// Engine sanity across random batch sizes: step time positive,
    /// throughput increases weakly with batch (fixed overhead amortizes).
    #[test]
    fn engine_batch_monotonicity(batch_exp in 4u32..10) {
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let job = |b: u64| {
            TrainingJob::builder(
                "cifar",
                resnet18_cifar(),
                InputPipeline::new(DatasetId::Cifar10, Bytes::new(32 * 32 * 3 * 2)),
                b,
                ConvergenceModel::new(24.0, 512, 0.0),
            )
            .optimizer(Optimizer::SgdMomentum)
            .build()
        };
        let small = sim
            .execute(&RunSpec::on_first(job(1 << batch_exp), 1))
            .expect("run succeeds")
            .report;
        let big = sim
            .execute(&RunSpec::on_first(job(1 << (batch_exp + 1)), 1))
            .expect("run succeeds")
            .report;
        prop_assert!(small.step_time.as_secs() > 0.0);
        prop_assert!(big.step_time.as_secs() > small.step_time.as_secs());
        prop_assert!(
            big.throughput_samples_per_sec() >= small.throughput_samples_per_sec() * 0.99
        );
    }

    /// Training time decreases (weakly) when epochs decrease.
    #[test]
    fn time_monotone_in_epochs(e1 in 1.0f64..50.0, shrink in 0.1f64..1.0) {
        let system = SystemId::C4140K.spec();
        let sim = Simulator::new(&system);
        let job = |epochs: f64| {
            TrainingJob::builder(
                "cifar",
                resnet18_cifar(),
                InputPipeline::new(DatasetId::Cifar10, Bytes::new(32 * 32 * 3 * 2)),
                256,
                ConvergenceModel::new(epochs, 256, 0.0),
            )
            .build()
        };
        let full = train_on_first(&sim, &job(e1), 1).expect("run").total_time;
        let less = train_on_first(&sim, &job(e1 * shrink), 1).expect("run").total_time;
        prop_assert!(less.as_secs() <= full.as_secs() + 1e-9);
    }
}

mod queue_differential {
    //! Differential battery for the calendar queue: every fuzzed schedule
    //! is driven through [`EventQueue`] and the retained `BinaryHeap`
    //! oracle [`ReferenceEventQueue`] move-for-move; the pop sequences
    //! (timestamps, payloads, FIFO tie order) and the `now`/`len`/
    //! `next_time` observables must never diverge.

    use mlperf_hw::units::Seconds;
    use mlperf_sim::des::{EventQueue, ReferenceEventQueue};
    use mlperf_testkit::rng::Rng;

    /// Drive both queues with `ops` seeded operations and assert lockstep
    /// equality. Times are drawn from a coarse grid so FIFO ties are
    /// frequent, with occasional far-future spikes to exercise the
    /// calendar's direct-search path and occasional bursts/droughts to
    /// exercise both resize directions.
    fn drive(seed: u64, ops: usize) {
        let mut rng = Rng::new(seed);
        let mut cal = EventQueue::new();
        let mut oracle = ReferenceEventQueue::new();
        let mut next_payload = 0u64;
        for step in 0..ops {
            let roll = rng.gen_range(0..100u32);
            if roll < 55 || cal.is_empty() {
                let dt = match rng.gen_range(0..10u32) {
                    0 => rng.gen_f64() * 1.0e6,                      // far-future spike
                    1..=4 => rng.gen_range(0..64u32) as f64 * 0.25,  // tie-rich grid
                    _ => rng.gen_f64() * 8.0,                        // smooth spread
                };
                let at = cal.now() + Seconds::new(dt);
                cal.schedule(at, next_payload);
                oracle.schedule(at, next_payload);
                next_payload += 1;
            } else {
                let got = cal.pop();
                let want = oracle.pop();
                assert_eq!(got, want, "seed {seed:#x} diverged popping at op {step}");
            }
            assert_eq!(cal.len(), oracle.len(), "seed {seed:#x} len at op {step}");
            assert_eq!(cal.now(), oracle.now(), "seed {seed:#x} now at op {step}");
            assert_eq!(
                cal.next_time(),
                oracle.next_time(),
                "seed {seed:#x} next_time at op {step}"
            );
        }
        while let Some(got) = cal.pop() {
            assert_eq!(Some(got), oracle.pop(), "seed {seed:#x} diverged draining");
        }
        assert!(oracle.is_empty());
    }

    mlperf_testkit::properties! {
        /// Fuzzed schedules: the calendar queue and the heap oracle are
        /// observationally identical.
        #[test]
        fn calendar_queue_matches_reference(seed in 0u64..1 << 48) {
            drive(seed, 400);
        }
    }

    /// Named seed replays: schedules that exercised specific calendar
    /// mechanics during development, pinned so any future regression
    /// reproduces under a stable name instead of a lost fuzz draw.
    #[test]
    fn regression_seed_resize_churn() {
        // Bursty enough to double the bucket array several times and
        // shrink it back while draining.
        drive(0x5eed_0001, 3_000);
    }

    #[test]
    fn regression_seed_tie_heavy() {
        drive(0x5eed_0002, 800);
    }

    #[test]
    fn regression_seed_far_future_laps() {
        // Spike-rich draw: repeatedly leaves the dense window, forcing
        // the lap scan to give up and direct-search.
        drive(0x5eed_0003, 1_200);
    }

    /// The FIFO contract at one instant across interleaved pops: the
    /// calendar queue must interleave same-time payloads in global
    /// insertion order even when the schedule alternates with pops.
    #[test]
    fn regression_interleaved_ties_pop_in_insertion_order() {
        let mut cal = EventQueue::new();
        let t = Seconds::new(9.0);
        cal.schedule(t, "a");
        cal.schedule(t, "b");
        cal.schedule(Seconds::new(1.0), "early");
        assert_eq!(cal.pop().unwrap().1, "early");
        cal.schedule(t, "c");
        let rest: Vec<&str> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, ["a", "b", "c"]);
    }
}

mod cluster_properties {
    use mlperf_sim::cluster::{
        AreaEfficient, Cluster, ClusterJobSpec, FcfsWidestFit, GreedyBestFinish, NaiveWidest,
        SchedulingPolicy, Submission,
    };
    use mlperf_testkit::prop::*;

    /// Random job batches: 1..6 jobs with times at widths 1/2/4, weakly
    /// improving, plus staggered arrivals.
    fn arb_submissions() -> impl Gen<Value = Vec<Submission>> {
        vec_of(
            (5.0f64..300.0, 0.5f64..1.0, 0.5f64..1.0, 0.0f64..120.0),
            1usize..6,
        )
        .prop_map(|specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (t1, f2, f4, arrival))| {
                    let job = ClusterJobSpec::new(
                        format!("job{i}"),
                        [(1, t1), (2, t1 * f2), (4, t1 * f2 * f4)],
                    );
                    Submission::after_minutes(job, arrival)
                })
                .collect()
        })
    }

    mlperf_testkit::properties! {
        /// Every policy completes every job, never overlaps capacity, and
        /// never starts a job before it arrives.
        #[test]
        fn cluster_invariants_hold(subs in arb_submissions(), g in 1u64..=4) {
            let n_jobs = subs.len();
            let mut naive = NaiveWidest;
            let mut greedy = GreedyBestFinish;
            let mut area = AreaEfficient;
            let mut fcfs = FcfsWidestFit;
            let policies: Vec<&mut dyn SchedulingPolicy> =
                vec![&mut naive, &mut greedy, &mut area, &mut fcfs];
            for p in policies {
                let trace = Cluster::new(g).run(subs.clone(), p);
                prop_assert_eq!(trace.completions.len(), n_jobs, "{}", p.name());
                // Arrival causality.
                for c in &trace.completions {
                    prop_assert!(
                        c.start.as_secs() + 1e-9 >= subs[c.id].arrival.as_secs(),
                        "{} started before arriving under {}", c.name, p.name()
                    );
                    prop_assert!(c.end.as_secs() > c.start.as_secs());
                    prop_assert!(c.width >= 1 && c.width <= g);
                }
                // Capacity: at every start instant, concurrent widths fit.
                for c in &trace.completions {
                    let concurrent: u64 = trace
                        .completions
                        .iter()
                        .filter(|o| {
                            o.start.as_secs() <= c.start.as_secs() + 1e-12
                                && o.end.as_secs() > c.start.as_secs() + 1e-12
                        })
                        .map(|o| o.width)
                        .sum();
                    prop_assert!(
                        concurrent <= g,
                        "{} GPUs busy of {g} under {}", concurrent, p.name()
                    );
                }
                prop_assert!(trace.utilization() <= 1.0 + 1e-9);
            }
        }
    }
}

mod fault_properties {
    use mlperf_data::storage::StorageDevice;
    use mlperf_data::{DatasetId, InputPipeline};
    use mlperf_hw::systems::SystemId;
    use mlperf_hw::units::{Bytes, Seconds};
    use mlperf_models::zoo::resnet::resnet18_cifar;
    use mlperf_sim::checkpoint::{daly_interval, expected_runtime, failure_free_overhead};
    use mlperf_sim::fault::{replay, FaultConfig, FaultPlan, RetryPolicy};
    use mlperf_sim::{
        CheckpointSpec, ConvergenceModel, RunSpec, Simulator, StepReport, TrainingJob,
    };
    use mlperf_testkit::prop::*;
    use std::sync::OnceLock;

    fn cifar_job() -> TrainingJob {
        TrainingJob::builder(
            "cifar",
            resnet18_cifar(),
            InputPipeline::new(DatasetId::Cifar10, Bytes::new(32 * 32 * 3 * 2)),
            256,
            ConvergenceModel::new(24.0, 512, 0.0),
        )
        .build()
    }

    /// One steady-state report shared across property cases (the replay
    /// input is deterministic; re-simulating per case is pure waste).
    fn step() -> &'static StepReport {
        static STEP: OnceLock<StepReport> = OnceLock::new();
        STEP.get_or_init(|| {
            let system = SystemId::C4140K.spec();
            Simulator::new(&system)
                .execute(&RunSpec::on_first(cifar_job(), 4))
                .expect("run succeeds")
                .report
        })
    }

    /// Named regression for the DES tie-break contract the fault replay
    /// leans on: events scheduled at the *same* instant pop in insertion
    /// order, so a checkpoint landing on a fault's timestamp resolves
    /// the same way on every run.
    #[test]
    fn regression_equal_timestamps_pop_fifo() {
        use mlperf_sim::des::EventQueue;
        let mut q = EventQueue::new();
        let t = Seconds::new(42.0);
        for label in ["first", "second", "third", "fourth"] {
            q.schedule(t, label);
        }
        q.schedule(Seconds::new(41.0), "earlier");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["earlier", "first", "second", "third", "fourth"]);
    }

    mlperf_testkit::properties! {
        /// The seeded-replay contract: equal seeds yield byte-identical
        /// fault plans, draw logs, and replay traces. Failures shrink on
        /// the seed, i.e. on the fault-plan draw stream behind it.
        #[test]
        fn equal_seeds_replay_byte_identically(
            seed in 0u64..1 << 48,
            mtbf_min in 3.0f64..30.0
        ) {
            let horizon = Seconds::from_minutes(30.0);
            let mtbf = Seconds::from_minutes(mtbf_min);
            let a = FaultPlan::generate(seed, horizon, mtbf, 4);
            let b = FaultPlan::generate(seed, horizon, mtbf, 4);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.script_trace(), b.script_trace());
            let cfg = FaultConfig {
                plan: a,
                checkpoint: CheckpointSpec::new(
                    Seconds::from_minutes(2.0),
                    StorageDevice::NvmeSsd,
                ),
                retry: RetryPolicy::default(),
            };
            let job = cifar_job();
            let (s1, t1) = replay(&cfg, &job, step(), 2_000);
            let (s2, t2) = replay(&cfg, &job, step(), 2_000);
            prop_assert_eq!(s1, s2);
            prop_assert_eq!(t1.to_bytes(), t2.to_bytes());
        }

        /// Failure-free checkpoint overhead is strictly monotone in
        /// checkpoint *frequency*: halving the interval doubles the tax.
        #[test]
        fn checkpoint_overhead_monotone_in_frequency(
            tau_min in 1.0f64..120.0,
            c_secs in 0.5f64..60.0,
            halvings in 1u32..6
        ) {
            let work = Seconds::from_hours(10.0);
            let c = Seconds::new(c_secs);
            let mut tau = Seconds::from_minutes(tau_min);
            let mut last = failure_free_overhead(work, tau, c);
            for _ in 0..halvings {
                tau = tau.scale(0.5);
                let next = failure_free_overhead(work, tau, c);
                prop_assert!(
                    next.as_secs() > last.as_secs(),
                    "overhead fell as checkpoints got more frequent"
                );
                prop_assert!((next.as_secs() - 2.0 * last.as_secs()).abs() < 1e-6);
                last = next;
            }
        }

        /// Daly's expected runtime is quasi-convex in the interval: on a
        /// geometric grid it falls to a single minimum and rises after.
        #[test]
        fn expected_ttt_quasi_convex_in_interval(
            c_secs in 1.0f64..120.0,
            mtbf_hours in 0.5f64..24.0
        ) {
            let work = Seconds::from_hours(20.0);
            let c = Seconds::new(c_secs);
            let r = Seconds::new(2.0 * c_secs + 30.0);
            let m = Seconds::from_hours(mtbf_hours);
            let grid: Vec<f64> = (0..40)
                .map(|i| 10.0 * 1.35f64.powi(i)) // ~10 s … ~1.7 e5 s
                .collect();
            let times: Vec<f64> = grid
                .iter()
                .map(|&tau| expected_runtime(work, Seconds::new(tau), c, r, m).as_secs())
                .collect();
            let min_idx = times
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("grid nonempty");
            for w in times[..=min_idx].windows(2) {
                prop_assert!(w[1] <= w[0] * (1.0 + 1e-9), "rise before the minimum");
            }
            for w in times[min_idx..].windows(2) {
                prop_assert!(w[1] >= w[0] * (1.0 - 1e-9), "dip after the minimum");
            }
        }

        /// The Daly-optimal interval is never worse than the endpoints of
        /// any sweep bracketing it.
        #[test]
        fn daly_interval_beats_sweep_endpoints(
            c_secs in 1.0f64..120.0,
            mtbf_hours in 0.5f64..24.0,
            spread in 2.0f64..64.0
        ) {
            let work = Seconds::from_hours(20.0);
            let c = Seconds::new(c_secs);
            let r = Seconds::new(2.0 * c_secs + 30.0);
            let m = Seconds::from_hours(mtbf_hours);
            let opt = daly_interval(c, m);
            prop_assert!(opt.as_secs() > 0.0);
            let at = |tau: Seconds| expected_runtime(work, tau, c, r, m).as_secs();
            let best = at(opt);
            prop_assert!(best <= at(opt.scale(1.0 / spread)) * (1.0 + 1e-6));
            prop_assert!(best <= at(opt.scale(spread)) * (1.0 + 1e-6));
        }
    }
}

/// Tree beats ring on latency-dominated payloads for large N; ring beats
/// tree on bandwidth-dominated payloads — the crossover exists.
#[test]
fn algorithm_crossover_exists() {
    let p = peer(45.0);
    let tiny = Bytes::from_kib(1);
    let huge = Bytes::from_mib(512);
    assert!(
        allreduce_time(AllReduceAlgorithm::Tree, tiny, 16, &p).as_secs()
            < allreduce_time(AllReduceAlgorithm::Ring, tiny, 16, &p).as_secs()
    );
    assert!(
        allreduce_time(AllReduceAlgorithm::Ring, huge, 16, &p).as_secs()
            < allreduce_time(AllReduceAlgorithm::Tree, huge, 16, &p).as_secs()
    );
}
