//! Committed bench snapshots: measure, write, and tolerance-check.
//!
//! The `sweep` and `des` bench targets don't print transient timings and
//! forget them — they produce a flat JSON snapshot (`BENCH_sweep.json`,
//! `BENCH_des.json`) committed at the repository root, so a perf
//! regression shows up as a failed `--check` in CI, not as a vibe.
//!
//! Raw wall-clock numbers (cells/sec, events/sec) vary across machines,
//! so they are recorded but **not** gated. The gate covers only the
//! scale-invariant fields each target nominates — same-run speedup
//! ratios, hit rates, cell/event counts — compared against the committed
//! snapshot at ±20% relative tolerance.
//!
//! Modes (after `--` on the cargo command line):
//!
//! * *(none)* — measure and print the snapshot JSON to stdout;
//! * `--write` — measure and (over)write the committed snapshot;
//! * `--check` — measure and fail (exit 1) if any gated field drifted
//!   more than 20% from the committed snapshot;
//! * `--test` — skip entirely (what `cargo test` passes, keeping tier-1
//!   fast).

use std::path::PathBuf;

/// Relative tolerance for gated fields in `--check` mode.
pub const TOLERANCE: f64 = 0.20;

/// A flat, ordered map of metric name → value — everything a snapshot
/// bench measures. Serialized as one stable pretty-printed JSON object.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Schema tag, first field of the JSON object.
    pub schema: &'static str,
    fields: Vec<(String, f64)>,
}

impl Snapshot {
    /// An empty snapshot with a schema tag.
    pub fn new(schema: &'static str) -> Snapshot {
        Snapshot {
            schema,
            fields: Vec::new(),
        }
    }

    /// Append one metric. Values are stored as `f64`; counts round-trip
    /// exactly up to 2^53.
    pub fn push(&mut self, name: &str, value: f64) {
        assert!(value.is_finite(), "snapshot field '{name}' is not finite");
        self.fields.push((name.to_string(), value));
    }

    /// The value of a named field.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.fields.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Render as a stable pretty-printed JSON object (trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{}\"", self.schema));
        for (name, value) in &self.fields {
            // Counts print as integers, measurements with full precision.
            let v = if *value == value.trunc() && value.abs() < 1e15 {
                format!("{}", *value as i64)
            } else {
                format!("{value}")
            };
            out.push_str(&format!(",\n  \"{name}\": {v}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parse a snapshot previously produced by [`Snapshot::to_json`]
    /// (a flat object of one string field and number fields). `None` on
    /// anything malformed.
    pub fn parse(text: &str, schema: &'static str) -> Option<Snapshot> {
        let body = text.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut snap = Snapshot::new(schema);
        let mut saw_schema = false;
        for pair in body.split(",\n") {
            let (name, value) = pair.trim().split_once(':')?;
            let name = name.trim().strip_prefix('"')?.strip_suffix('"')?;
            let value = value.trim();
            if name == "schema" {
                saw_schema = value.trim_matches('"') == schema;
                continue;
            }
            snap.push(name, value.parse().ok()?);
        }
        saw_schema.then_some(snap)
    }
}

/// Where committed snapshots live: the workspace root.
pub fn snapshot_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file)
}

/// Compare `got` against the committed `want`, gating only the named
/// fields at ±[`TOLERANCE`]. Returns human-readable failures.
pub fn drifted(want: &Snapshot, got: &Snapshot, gated: &[&str]) -> Vec<String> {
    let mut failures = Vec::new();
    for name in gated {
        let Some(old) = want.get(name) else {
            failures.push(format!("committed snapshot is missing gated field '{name}'"));
            continue;
        };
        let Some(new) = got.get(name) else {
            failures.push(format!("measured snapshot is missing gated field '{name}'"));
            continue;
        };
        let scale = old.abs().max(1e-12);
        if ((new - old) / scale).abs() > TOLERANCE {
            failures.push(format!(
                "'{name}' drifted {:+.1}% (committed {old}, measured {new}, tolerance ±{:.0}%)",
                (new - old) / scale * 100.0,
                TOLERANCE * 100.0,
            ));
        }
    }
    failures
}

/// Entry point for a snapshot bench target: dispatch on the CLI mode and
/// run `measure` at most once. `gated` names the scale-invariant fields
/// `--check` holds to the committed `file`.
pub fn run(file: &str, gated: &[&str], measure: impl FnOnce() -> Snapshot) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--test") {
        println!("snapshot bench '{file}' skipped in test mode");
        return;
    }
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");
    let snap = measure();
    print!("{}", snap.to_json());
    let path = snapshot_path(file);
    if write {
        std::fs::write(&path, snap.to_json()).expect("writing snapshot");
        println!("wrote {}", path.display());
    }
    if check {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("no committed snapshot {}: {e}", path.display()));
        let want = Snapshot::parse(&committed, snap.schema)
            .unwrap_or_else(|| panic!("malformed committed snapshot {}", path.display()));
        let failures = drifted(&want, &snap, gated);
        if failures.is_empty() {
            println!("{file}: all {} gated fields within ±{:.0}%", gated.len(), TOLERANCE * 100.0);
        } else {
            for f in &failures {
                eprintln!("{file}: {f}");
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_exactly() {
        let mut s = Snapshot::new("bench_test.v1");
        s.push("cells", 999_936.0);
        s.push("speedup", 123.456789);
        s.push("hit_rate", 0.875);
        let parsed = Snapshot::parse(&s.to_json(), "bench_test.v1").unwrap();
        assert_eq!(parsed, s);
        // Wrong schema tag is a parse failure, not a silent mismatch.
        assert!(Snapshot::parse(&s.to_json(), "bench_other.v1").is_none());
    }

    #[test]
    fn drift_gate_is_relative_and_only_covers_gated_fields() {
        let mut old = Snapshot::new("bench_test.v1");
        old.push("speedup", 100.0);
        old.push("cells_per_sec", 5000.0);
        let mut new = Snapshot::new("bench_test.v1");
        new.push("speedup", 115.0); // +15%: inside ±20%
        new.push("cells_per_sec", 50.0); // -99%: ungated, ignored
        assert!(drifted(&old, &new, &["speedup"]).is_empty());
        new.fields[0].1 = 125.0; // +25%: outside
        assert_eq!(drifted(&old, &new, &["speedup"]).len(), 1);
        // A missing gated field is a failure in either direction.
        assert_eq!(drifted(&old, &new, &["missing"]).len(), 1);
    }
}
