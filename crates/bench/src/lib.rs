//! Benchmark harness for the MLPerf-demystified reproduction.
//!
//! The Criterion targets under `benches/` regenerate every table and figure
//! of the paper and time the machinery that produces them:
//!
//! * `tables` — Tables I-V;
//! * `figures` — Figures 1-5;
//! * `ablations` — design-choice studies DESIGN.md calls out (all-reduce
//!   algorithm, comm/compute overlap, PCIe lane width, scheduler policy);
//! * `substrate` — micro-benchmarks of the underlying machinery (model
//!   builders, the engine step, PCA, the schedule search);
//! * `sweep` / `des` — snapshot benches (see [`snapshot`]) pinning the
//!   million-cell sweep engine and the calendar event queue to committed
//!   `BENCH_sweep.json` / `BENCH_des.json` baselines.
//!
//! The `repro` binary in `mlperf-suite` prints the regenerated artifacts;
//! these targets measure them.

pub mod snapshot;
