//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation runs the affected experiment with one mechanism swapped
//! and prints the delta alongside the timing, so `cargo bench` doubles as
//! the ablation report.

use mlperf_testkit::bench::Runner;
use mlperf_testkit::{bench_group, bench_main};
use mlperf_hw::cpu::CpuModel;
use mlperf_hw::gpu::GpuModel;
use mlperf_hw::interconnect::Link;
use mlperf_hw::systems::SystemId;
use mlperf_hw::topology::Topology;
use mlperf_hw::units::Bytes;
use mlperf_sim::allreduce::{allreduce_time, AllReduceAlgorithm};
use mlperf_sim::{train_on_first, Simulator};
use mlperf_suite::BenchmarkId;
use std::hint::black_box;

/// All-reduce algorithm ablation: ring vs tree vs naive on the
/// communication-heavy Transformer (C4140 K, 4 GPUs).
fn ablate_allreduce(c: &mut Runner) {
    let system = SystemId::C4140K.spec();
    let sim = Simulator::new(&system);
    let base = BenchmarkId::MlpfXfmrPy.job();

    println!("\n=== ablation: all-reduce algorithm (XFMR, C4140 K, 4 GPUs) ===");
    for alg in [
        AllReduceAlgorithm::Ring,
        AllReduceAlgorithm::Tree,
        AllReduceAlgorithm::Naive,
        AllReduceAlgorithm::ParameterServer,
    ] {
        let t = train_on_first(&sim, &base.with_allreduce(alg), 4)
            .expect("run succeeds")
            .total_time
            .as_minutes();
        println!("  {alg:>5}: {t:.1} min");
    }

    let mut g = c.benchmark_group("ablation_allreduce");
    g.sample_size(10);
    for alg in [
        AllReduceAlgorithm::Ring,
        AllReduceAlgorithm::Tree,
        AllReduceAlgorithm::Naive,
    ] {
        g.bench_function(alg.to_string(), |b| {
            let job = base.with_allreduce(alg);
            b.iter(|| black_box(train_on_first(&sim, &job, 4).expect("run succeeds")))
        });
    }
    g.finish();
}

/// Overlap ablation: how much comm/compute overlap buys per benchmark.
fn ablate_overlap(c: &mut Runner) {
    let system = SystemId::Dss8440.spec();
    let sim = Simulator::new(&system);

    println!("\n=== ablation: comm/compute overlap (DSS 8440, 8 GPUs) ===");
    for id in [
        BenchmarkId::MlpfRes50Mx,
        BenchmarkId::MlpfXfmrPy,
        BenchmarkId::MlpfGnmtPy,
    ] {
        let with = train_on_first(&sim, &id.job(), 8)
            .expect("run")
            .total_time
            .as_minutes();
        let without = train_on_first(&sim, &id.job().without_overlap(), 8)
            .expect("run")
            .total_time
            .as_minutes();
        println!(
            "  {:16} overlapped {with:.1} min, serialized {without:.1} min ({:+.1}%)",
            id.abbreviation(),
            (without / with - 1.0) * 100.0
        );
    }

    let mut g = c.benchmark_group("ablation_overlap");
    g.sample_size(10);
    let job = BenchmarkId::MlpfXfmrPy.job();
    g.bench_function("overlapped", |b| {
        b.iter(|| black_box(train_on_first(&sim, &job, 8).expect("run succeeds")))
    });
    let serialized = job.without_overlap();
    g.bench_function("serialized", |b| {
        b.iter(|| black_box(train_on_first(&sim, &serialized, 8).expect("run succeeds")))
    });
    g.finish();
}

/// PCIe lane-width sweep: ring all-reduce cost of 160 MB of gradients on a
/// single-socket box as the per-GPU link narrows.
fn ablate_pcie_lanes(c: &mut Runner) {
    println!("\n=== ablation: PCIe lane width (4 GPUs, 160 MB gradients) ===");
    let grads = Bytes::from_mib(160);
    for lanes in [4u32, 8, 16] {
        let mut t = Topology::new(format!("x{lanes}"));
        let cpu = t.add_cpu(CpuModel::XeonGold6148);
        for _ in 0..4 {
            let g = t.add_gpu(GpuModel::TeslaV100Pcie16);
            t.connect(cpu, g, Link::PcieGen3 { lanes });
        }
        let worst = t.worst_peer_path(&[0, 1, 2, 3]).expect("connected");
        let time = allreduce_time(AllReduceAlgorithm::Ring, grads, 4, &worst);
        println!("  x{lanes:<2}: {:.1} ms", time.as_secs() * 1e3);
    }

    let mut g = c.benchmark_group("ablation_pcie_lanes");
    g.bench_function("route_and_price_x16", |b| {
        let mut t = Topology::new("x16");
        let cpu = t.add_cpu(CpuModel::XeonGold6148);
        for _ in 0..4 {
            let gpu = t.add_gpu(GpuModel::TeslaV100Pcie16);
            t.connect(cpu, gpu, Link::PCIE3_X16);
        }
        b.iter(|| {
            let worst = t.worst_peer_path(&[0, 1, 2, 3]).expect("connected");
            black_box(allreduce_time(AllReduceAlgorithm::Ring, grads, 4, &worst))
        })
    });
    g.finish();
}

/// Scheduler-policy ablation: naive vs LPT vs exact search makespans.
fn ablate_scheduler(c: &mut Runner) {
    use mlperf_analysis::scheduling::{lpt_schedule, naive_schedule, optimal_schedule};
    let jobs = mlperf_suite::experiments::figure4::measure_job_times().expect("measured");

    println!("\n=== ablation: scheduler policy (7 MLPerf jobs) ===");
    for g in [2u64, 4, 8] {
        println!(
            "  {g} GPUs: naive {:.0}, LPT {:.0}, optimal {:.0} min",
            naive_schedule(&jobs, g).makespan,
            lpt_schedule(&jobs, g).makespan,
            optimal_schedule(&jobs, g).makespan,
        );
    }

    let mut group = c.benchmark_group("ablation_scheduler");
    group.sample_size(10);
    group.bench_function("naive", |b| b.iter(|| black_box(naive_schedule(&jobs, 4))));
    group.bench_function("lpt", |b| b.iter(|| black_box(lpt_schedule(&jobs, 4))));
    group.bench_function("optimal", |b| {
        b.iter(|| black_box(optimal_schedule(&jobs, 4)))
    });
    group.finish();
}

bench_group!(
    benches,
    ablate_allreduce,
    ablate_overlap,
    ablate_pcie_lanes,
    ablate_scheduler
);
bench_main!(benches);
