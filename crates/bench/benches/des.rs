//! Snapshot bench: the calendar event queue vs the binary-heap reference
//! (`BENCH_des.json`).
//!
//! Two synthetic event storms — hold-K pop-push loops over seeded-random
//! delays with deliberate ties — driven through both queues:
//!
//! * **uniform** — delays on the same scale as the event population (the
//!   classic hold model): the calendar queue's home turf, and the gated
//!   headline number;
//! * **clustered** — delays 1000x smaller than the initial spread, so
//!   events bunch into few buckets: the calendar queue's known weak
//!   case, recorded ungated so the trade-off stays visible instead of
//!   cherry-picked away.
//!
//! Each storm's popped sequence is checksummed and must match exactly
//! between the two queues (the differential contract from
//! `crates/sim/tests/properties.rs`, re-asserted here so a perf number
//! can never be quoted off a divergent queue). `--check` gates the
//! same-run uniform speedup and the operation counts at ±20%.

use mlperf_bench::snapshot::{self, Snapshot};
use mlperf_hw::units::Seconds;
use mlperf_sim::des::{EventQueue, ReferenceEventQueue};
use mlperf_testkit::rng::Rng;
use std::time::Instant;

/// Events resident in the queue throughout the storm.
const HELD: usize = 4096;
/// Pop-push operations timed per storm.
const OPS: usize = 1_000_000;

/// Drive one queue through a storm; returns (checksum, seconds).
/// Identical code for both queues via the macro — same seeds, same
/// delays, same tie pattern.
macro_rules! storm {
    ($queue:expr, $delay_scale:expr) => {{
        let mut q = $queue;
        let mut rng = Rng::new(0xde5_ca1e);
        for i in 0..HELD {
            q.schedule(Seconds::new(rng.gen_f64()), i as u64);
        }
        let mut checksum = 0u64;
        let start = Instant::now();
        for i in 0..OPS {
            let (at, ev) = q.pop().expect("queue never drains");
            checksum = checksum
                .wrapping_mul(0x100000001b3)
                .wrapping_add(at.as_secs().to_bits())
                .wrapping_add(ev);
            // Mostly forward progress; every 16th event is a tie with
            // the current head to exercise FIFO ordering in the hot loop.
            let delay = if i % 16 == 0 {
                Seconds::ZERO
            } else {
                Seconds::new(rng.gen_f64() * $delay_scale)
            };
            q.schedule(at + delay, ev);
        }
        (checksum, start.elapsed().as_secs_f64())
    }};
}

/// Timing trials per storm. Raw rates are reported from the best
/// (minimum) trial; the gated speedup is the *median of per-trial
/// ratios* — the two queues run back-to-back inside each trial, so a
/// shared machine's drift (well over the ±20% snapshot gate across
/// seconds) cancels as common mode.
const TRIALS: usize = 5;

/// Run one storm through both queues `TRIALS` times, assert sequence
/// equality every time; returns (best_reference_secs,
/// best_calendar_secs, median reference/calendar ratio).
fn both(delay_scale: f64) -> (f64, f64, f64) {
    let mut best_ref = f64::INFINITY;
    let mut best_cal = f64::INFINITY;
    let mut ratios = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        let (ref_sum, ref_secs) = storm!(ReferenceEventQueue::<u64>::new(), delay_scale);
        let (cal_sum, cal_secs) = storm!(EventQueue::<u64>::new(), delay_scale);
        assert_eq!(
            cal_sum, ref_sum,
            "calendar queue popped a different sequence than the reference (scale {delay_scale})"
        );
        best_ref = best_ref.min(ref_secs);
        best_cal = best_cal.min(cal_secs);
        ratios.push(ref_secs / cal_secs);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    (best_ref, best_cal, ratios[TRIALS / 2])
}

fn measure() -> Snapshot {
    let (uni_ref, uni_cal, uni_speedup) = both(1.0);
    let (clu_ref, clu_cal, clu_speedup) = both(1e-3);

    let mut snap = Snapshot::new("bench_des.v1");
    snap.push("ops", OPS as f64);
    snap.push("held_events", HELD as f64);
    snap.push("reference_events_per_sec", OPS as f64 / uni_ref);
    snap.push("calendar_events_per_sec", OPS as f64 / uni_cal);
    snap.push("speedup", uni_speedup);
    snap.push("clustered_reference_events_per_sec", OPS as f64 / clu_ref);
    snap.push("clustered_calendar_events_per_sec", OPS as f64 / clu_cal);
    snap.push("clustered_speedup", clu_speedup);
    snap
}

/// `--check` gates the counts and the same-run uniform speedup; raw
/// rates (and the clustered weak case) are recorded only.
const GATED: &[&str] = &["ops", "held_events", "speedup"];

fn main() {
    snapshot::run("BENCH_des.json", GATED, measure);
}
