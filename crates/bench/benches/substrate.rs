//! Micro-benchmarks of the reproduction's machinery.

use mlperf_testkit::bench::Runner;
use mlperf_testkit::{bench_group, bench_main};
use mlperf_analysis::linalg::{symmetric_eigen, Matrix};
use mlperf_analysis::pca::Pca;
use mlperf_hw::systems::SystemId;
use mlperf_models::zoo::{detection, resnet, translation};
use mlperf_sim::{RunSpec, Simulator};
use mlperf_suite::BenchmarkId;
use std::hint::black_box;

fn bench_model_builders(c: &mut Runner) {
    let mut g = c.benchmark_group("model_builders");
    g.bench_function("resnet50", |b| b.iter(|| black_box(resnet::resnet50())));
    g.bench_function("mask_rcnn", |b| {
        b.iter(|| black_box(detection::mask_rcnn()))
    });
    g.bench_function("transformer_big", |b| {
        b.iter(|| black_box(translation::transformer_big()))
    });
    g.finish();
}

fn bench_engine_step(c: &mut Runner) {
    let system = SystemId::Dss8440.spec();
    let sim = Simulator::new(&system);
    let job = BenchmarkId::MlpfRes50Mx.job();
    let mut g = c.benchmark_group("engine");
    let spec = RunSpec::on_first(job.clone(), 8);
    g.bench_function("steady_state_8gpu", |b| {
        b.iter(|| black_box(sim.execute(&spec).expect("run succeeds")))
    });
    g.bench_function("iteration_cost", |b| {
        b.iter(|| {
            black_box(job.model().iteration_cost(
                job.per_gpu_batch(),
                job.precision(),
                job.optimizer(),
            ))
        })
    });
    g.finish();
}

fn bench_analysis(c: &mut Runner) {
    // A deterministic pseudo-random 13x8 feature matrix.
    let rows: Vec<Vec<f64>> = (0..13)
        .map(|i| {
            (0..8)
                .map(|j| {
                    let x = ((i * 8 + j) as f64 * 2654435.761) % 1000.0;
                    x / 10.0 + (i as f64) * (j as f64 % 3.0)
                })
                .collect()
        })
        .collect();
    let mut g = c.benchmark_group("analysis");
    g.bench_function("pca_fit_13x8", |b| b.iter(|| black_box(Pca::fit(&rows))));
    g.bench_function("jacobi_eigen_8x8", |b| {
        let mut m = Matrix::zeros(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                let v = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                m[(i, j)] = v;
            }
        }
        b.iter(|| black_box(symmetric_eigen(&m)))
    });
    g.finish();
}

fn bench_topology(c: &mut Runner) {
    let spec = SystemId::Dss8440.spec();
    let mut g = c.benchmark_group("topology");
    g.bench_function("worst_peer_path_8gpu", |b| {
        let gpus: Vec<u32> = (0..8).collect();
        b.iter(|| black_box(spec.topology().worst_peer_path(&gpus).expect("connected")))
    });
    g.bench_function("build_dss8440", |b| {
        b.iter(|| black_box(SystemId::Dss8440.spec()))
    });
    g.finish();
}

bench_group!(
    benches,
    bench_model_builders,
    bench_engine_step,
    bench_analysis,
    bench_topology
);
bench_main!(benches);
