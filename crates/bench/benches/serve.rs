//! Snapshot bench: the `repro serve` query server under a seeded
//! concurrent load (`BENCH_serve.json`).
//!
//! One in-process server (disk cache disabled, so every number reflects
//! the serve path itself, not disk state), hammered by concurrent
//! clients whose query plans come from the testkit's seeded load
//! generator — a skewed hot-subset mix over valid training cells,
//! expected-TTT cells, OOM/bad-GPU rejections, and pings, the same
//! vocabulary shape the load-test battery replays.
//!
//! The `--check` gate holds the *deterministic* half of the snapshot to
//! ±20% (in fact these are exact counts: the offered load and the
//! coalescing arithmetic are pure functions of the seed): total queries,
//! unique priced cells, coalesce hits, ok/error response counts.
//! Wall-clock throughput (qps) and the p50/p99 per-query latencies are
//! machine-dependent and recorded ungated.

use mlperf_bench::snapshot::{self, Snapshot};
use mlperf_suite::serve::{protocol, ServeOptions, Server};
use mlperf_suite::Config;
use mlperf_testkit::loadgen::LoadSpec;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

const SEED: u64 = 0x5E57_E5E7;
const CLIENTS: u64 = 8;
const QUERIES_PER_CLIENT: usize = 250;

/// The query vocabulary (mirrors the load-test battery's mix: mostly
/// priceable cells, a tail of typed rejections, a ping).
fn vocabulary() -> Vec<String> {
    let mut v = Vec::new();
    for workload in ["MLPf_Res50_MX", "MLPf_SSD_Py", "MLPf_XFMR_Py", "MLPf_GNMT_Py"] {
        for gpus in [1u32, 2, 4] {
            v.push(format!(
                r#"{{"v":1,"kind":"cell","workload":"{workload}","system":"DSS_8440","gpus":{gpus}}}"#
            ));
        }
    }
    v.push(
        r#"{"v":1,"kind":"cell","workload":"MLPf_Res50_MX","system":"C4140_(K)","gpus":1,"batch":16384}"#
            .into(),
    );
    v.push(r#"{"v":1,"kind":"cell","workload":"MLPf_SSD_Py","system":"DSS_8440","gpus":16}"#.into());
    v.push(
        r#"{"v":1,"kind":"cell","workload":"MLPf_XFMR_Py","system":"DSS_8440","gpus":4,"cell_kind":"expected-ttt","mtbf_hours":4,"interval":"daly"}"#
            .into(),
    );
    v.push(r#"{"v":1,"kind":"ping"}"#.into());
    v
}

/// Replay one client's plan, timing each request send→terminal-frame.
fn timed_client(socket: &std::path::Path, lines: &[&String]) -> Vec<Duration> {
    let stream = UnixStream::connect(socket).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    let mut latencies = Vec::with_capacity(lines.len());
    let mut frame = String::new();
    for line in lines {
        let start = Instant::now();
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        writer.flush().expect("send");
        loop {
            frame.clear();
            assert!(reader.read_line(&mut frame).expect("recv") > 0, "server hung up");
            if matches!(
                protocol::response_status(frame.trim_end()).as_deref(),
                Some("ok" | "error" | "busy" | "done")
            ) {
                break;
            }
        }
        latencies.push(start.elapsed());
    }
    latencies
}

fn percentile(sorted: &[Duration], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

fn measure() -> Snapshot {
    let vocab = vocabulary();
    let load = LoadSpec {
        vocab: vocab.len(),
        hot: 5,
        hot_pct: 70,
        queries: QUERIES_PER_CLIENT,
    };
    let plans = load.plans(SEED, CLIENTS);

    let cfg = Config { cache_enabled: false, ..Config::default() };
    let opts = ServeOptions {
        socket: std::env::temp_dir().join("mlperf_bench_serve.sock"),
        ..ServeOptions::default()
    };
    let server = Server::bind(&opts, &cfg).expect("bind");

    let server = &server;
    let (mut latencies, wall) = std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.run().expect("serve"));
        let start = Instant::now();
        let clients: Vec<_> = plans
            .iter()
            .map(|plan| {
                let lines: Vec<&String> = plan.iter().map(|&i| &vocab[i]).collect();
                scope.spawn(move || timed_client(server.socket(), &lines))
            })
            .collect();
        let latencies: Vec<Duration> =
            clients.into_iter().flat_map(|c| c.join().expect("client")).collect();
        let wall = start.elapsed().as_secs_f64();
        let stream = UnixStream::connect(server.socket()).expect("connect");
        let mut w = BufWriter::new(stream.try_clone().expect("clone"));
        w.write_all(b"{\"v\":1,\"kind\":\"shutdown\"}\n").expect("shutdown");
        w.flush().expect("shutdown");
        let mut ack = String::new();
        BufReader::new(stream).read_line(&mut ack).expect("ack");
        daemon.join().expect("daemon");
        (latencies, wall)
    });

    let stats = server.stats();
    let total = (CLIENTS as usize * QUERIES_PER_CLIENT) as f64;
    latencies.sort();

    let mut snap = Snapshot::new("bench_serve.v1");
    snap.push("queries_total", total);
    snap.push("unique_cells", stats.coalesce_misses as f64);
    snap.push("coalesce_hits", stats.coalesce_hits as f64);
    // +1 ok for the shutdown acknowledgement, counted like any query.
    snap.push("ok_responses", stats.ok_responses as f64);
    snap.push("error_responses", stats.error_responses as f64);
    snap.push("qps", total / wall);
    snap.push("p50_ms", percentile(&latencies, 0.50));
    snap.push("p99_ms", percentile(&latencies, 0.99));
    snap
}

/// Deterministic counts `--check` gates at ±20%; qps and latencies are
/// machine-dependent and recorded only.
const GATED: &[&str] = &[
    "queries_total",
    "unique_cells",
    "coalesce_hits",
    "ok_responses",
    "error_responses",
];

fn main() {
    snapshot::run("BENCH_serve.json", GATED, measure);
}
