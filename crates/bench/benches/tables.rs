//! Regenerate (and time) Tables I-V.
//!
//! Run `cargo bench -p mlperf-bench --bench tables`; the artifacts
//! themselves are printed by `repro --table N`.

use mlperf_testkit::bench::Runner;
use mlperf_testkit::{bench_group, bench_main};
use mlperf_suite::experiments as exp;
use std::hint::black_box;

fn bench_tables(c: &mut Runner) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);

    g.bench_function("table2_registry", |b| {
        b.iter(|| black_box(exp::table2::render()))
    });
    g.bench_function("table3_systems", |b| {
        b.iter(|| black_box(exp::table3::render()))
    });
    g.bench_function("table4_scaling", |b| {
        b.iter(|| {
            let t = exp::table4::run().expect("table runs");
            black_box(exp::table4::render(&t))
        })
    });
    g.bench_function("table5_resources", |b| {
        b.iter(|| {
            let t = exp::table5::run().expect("table runs");
            black_box(exp::table5::render(&t))
        })
    });
    g.bench_function("table1_insights", |b| {
        b.iter(|| {
            let t = exp::table1::run().expect("table runs");
            black_box(exp::table1::render(&t))
        })
    });
    g.finish();
}

bench_group!(benches, bench_tables);
bench_main!(benches);
