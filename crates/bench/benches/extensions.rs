//! Regenerate (and time) the beyond-the-paper extensions.

use mlperf_testkit::bench::Runner;
use mlperf_testkit::{bench_group, bench_main};
use mlperf_suite::experiments as exp;
use mlperf_suite::{validation, BenchmarkId};
use std::hint::black_box;

fn bench_extensions(c: &mut Runner) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);

    g.bench_function("cluster_study", |b| {
        b.iter(|| {
            let s = exp::cluster_study::run().expect("study runs");
            black_box(exp::cluster_study::render(&s))
        })
    });
    g.bench_function("energy_cost", |b| {
        b.iter(|| {
            let e = exp::energy_cost::run().expect("study runs");
            black_box(exp::energy_cost::render(&e))
        })
    });
    g.bench_function("storage_study", |b| {
        b.iter(|| {
            let rows = exp::storage_study::run().expect("study runs");
            black_box(exp::storage_study::render(&rows))
        })
    });
    g.bench_function("batch_sweep", |b| {
        b.iter(|| {
            let s = exp::batch_sweep::run(BenchmarkId::MlpfRes50Mx).expect("sweep runs");
            black_box(exp::batch_sweep::render(&s))
        })
    });
    g.bench_function("validation", |b| {
        b.iter(|| {
            let v = validation::run().expect("validation runs");
            black_box(validation::render(&v))
        })
    });
    g.finish();
}

bench_group!(benches, bench_extensions);
bench_main!(benches);
