//! Snapshot bench: the million-cell sweep engine vs its pre-interning,
//! pre-fast-path ancestor, measured by one harness (`BENCH_sweep.json`).
//!
//! Three measurements on the million-cell stress grid:
//!
//! 1. **legacy** — a faithful replica of what pricing one cell cost
//!    before this engine existed: the job rebuilt from the zoo once for
//!    the step request, once for the outcome request, and twice more for
//!    the epoch accounting; the system spec rebuilt per request (twice on
//!    a memo miss); the step memo keyed and populated per cell exactly as
//!    the old `Ctx` did; the per-op *scalar* pass walk priced before the
//!    memory gate (the old `prepare` ordering), so wall-crossing cells
//!    paid the full graph walk on their way to the OOM error; and the
//!    full DES engine for every viable step.
//! 2. **fast** — today's `price_cell` (interned templates and systems,
//!    vectorized+memoized pass costs, gate-before-pricing, analytic fast
//!    path, memo-free streaming context) over the *same* cells, same
//!    thread: the per-cell speedup the PR claims.
//! 3. **stream** — `run_streamed` over the complete 10^6-cell grid to a
//!    sink: aggregate cells/sec, the fast-path hit rate, and the
//!    shard-bounded `peak_resident` proof that the grid never
//!    materializes.
//!
//! The timed chunk walks the grid in odometer order (as a sweep actually
//! visits cells), covering every workload's first two (system=0, gpus)
//! blocks — 2 precisions x 5952 batches per block: the batch axis
//! crosses the OOM wall in every block, so the mix of viable and
//! wall-crossed cells, and the spread of model-graph sizes, is the
//! grid's own. Engine agreement is asserted cell-for-cell on a stride
//! of the chunk before any number is reported.
//!
//! The replica still *understates* the old cost in one place it cannot
//! reach: viable cells simulate on today's calendar event queue, not the
//! pre-PR binary heap (`BENCH_des.json` prices that gap separately), so
//! the per-cell speedup reported here is a floor.
//!
//! Wall-clock rates are recorded but not gated; the `--check` gate holds
//! the same-run speedup ratio, hit rate, and counts to ±20%.

use mlperf_bench::snapshot::{self, Snapshot};
use mlperf_sim::{outcome_from_step, RunSpec, SimError, Simulator, StepReport};
use mlperf_suite::runner::{Ctx, Pool};
use mlperf_suite::sweep::{self, CellSpec};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

/// Cells per (gpus) block: 2 precisions x 5952 batches.
const BLOCK: usize = 2 * 5952;
/// (gpus) blocks sampled per workload (gpus = 1 and 2, system 0).
const BLOCKS_PER_WORKLOAD: usize = 2;
/// Streaming shard (matches `repro sweep`).
const SHARD: usize = 1024;
/// Cell stride for the engine-agreement assertion.
const AGREE_STRIDE: usize = 331;

/// What the pre-PR step memo keyed on (benchmark, system, gpu set,
/// overrides, window) — including the per-request `Vec` the old `RunKey`
/// allocated.
type LegacyKey = (u8, u8, Vec<u32>, Option<u8>, Option<u64>, (u64, u64));

type LegacyMemo = HashMap<LegacyKey, Result<StepReport, SimError>>;

/// One zoo rebuild plus the cell's overrides — what every pre-PR request
/// materialized from scratch.
fn legacy_job(cell: &CellSpec) -> mlperf_sim::TrainingJob {
    let workload = cell.workload.expect("grid cell has a workload");
    let mut job = workload.job();
    if let Some(p) = cell.precision {
        job = job.with_precision(p);
    }
    if let Some(b) = cell.batch {
        job = job.with_per_gpu_batch(b);
    }
    job
}

/// The pre-PR `Ctx::step_for`: key built per request (window from a
/// fresh system spec), memoized per point, and on a miss a second system
/// spec build plus the DES engine — with the old `prepare` ordering
/// surcharge (the scalar per-op walk ran before the memory gate, so OOM
/// cells paid it too).
fn legacy_step_for(
    cell: &CellSpec,
    job: &mlperf_sim::TrainingJob,
    memo: &mut LegacyMemo,
) -> Result<StepReport, SimError> {
    let system = cell.system.expect("grid cell has a system").spec();
    let gpus = cell.gpus.expect("grid cell has a gpu count");
    let window = Simulator::new(&system).window();
    let key: LegacyKey = (
        cell.workload.map_or(0, |w| w as u8),
        cell.system.map_or(0, |s| s as u8),
        (0..gpus).collect(),
        cell.precision.map(|p| p as u8),
        cell.batch,
        window,
    );
    if let Some(hit) = memo.get(&key) {
        return hit.clone();
    }
    let system = cell.system.expect("grid cell has a system").spec();
    let result = Simulator::new(&system)
        .execute(&RunSpec::on_first(job.clone(), gpus))
        .map(|outcome| outcome.report);
    if matches!(result, Err(SimError::OutOfMemory { .. })) {
        // Pre-PR `prepare` priced the pass (the original scalar op walk —
        // `PassCostTable` did not exist yet) before checking memory, so
        // wall-crossing cells paid the walk on their way to the OOM
        // error. Viable cells need no surcharge: they price inside
        // `execute` against this cell's freshly rebuilt graph, which
        // costs at least the old walk.
        let batch = job.effective_per_gpu_batch(u64::from(gpus));
        black_box(job.model().pass_cost_scalar(batch, job.precision()));
    }
    memo.insert(key, result.clone());
    result
}

/// Pre-PR pricing of one training cell, replayed faithfully: four zoo
/// rebuilds (step, outcome, and two for the epoch accounting), per-call
/// system specs, the old memo shape, the full DES engine, and the same
/// `CellError` (kind token + formatted message) the old `price_cell`
/// built on the error path — no interning, no analytic path, no
/// vectorized pass costs.
fn legacy_price_cell(cell: &CellSpec, memo: &mut LegacyMemo) -> Result<Vec<f64>, sweep::CellError> {
    let workload = cell.workload.expect("grid cell has a workload");
    let gpus = cell.gpus.expect("grid cell has a gpu count");
    // ctx.step(&point)
    let job = legacy_job(cell);
    let step = legacy_step_for(cell, &job, memo).map_err(sweep::CellError::from_sim)?;
    // ctx.outcome(&point): a second rebuild, a second (memo-hit) request.
    let job = legacy_job(cell);
    let step2 = legacy_step_for(cell, &job, memo).map_err(sweep::CellError::from_sim)?;
    let outcome = outcome_from_step(&job, step2);
    // The old epoch accounting rebuilt the base job twice more.
    let probe = legacy_job(cell);
    let global_batch = probe.per_gpu_batch() * u64::from(gpus);
    let epochs = workload.job().convergence().epochs_at(global_batch);
    Ok(vec![
        outcome.total_time.as_minutes(),
        step.step_time.as_secs() * 1e3,
        step.throughput_samples_per_sec(),
        step.hbm_per_gpu.as_gib(),
        epochs,
    ])
}

fn measure() -> Snapshot {
    let grid = sweep::million_cell();
    // Every workload's first BLOCKS_PER_WORKLOAD (gpus) blocks on system
    // 0, each in odometer order: (workload, system, gpus, precision,
    // batch) with batch fastest.
    let per_workload = 3 * 4 * BLOCK;
    let workloads = grid.len() / per_workload;
    let chunk: Vec<CellSpec> = (0..workloads)
        .flat_map(|w| {
            let base = w * per_workload;
            (0..BLOCKS_PER_WORKLOAD * BLOCK).map(move |i| base + i)
        })
        .map(|i| grid.cell_at(i))
        .collect();

    // Engine agreement first: a speedup gated on divergent answers would
    // be meaningless. Strided so the check stays a few seconds.
    {
        let mut memo = LegacyMemo::new();
        let ctx = Ctx::without_memo();
        for cell in chunk.iter().step_by(AGREE_STRIDE) {
            let legacy = legacy_price_cell(cell, &mut memo);
            let fast = sweep::price_cell(&ctx, cell);
            match (legacy, fast) {
                (Ok(a), Ok(b)) => assert_eq!(&a, b.values(), "engines diverged on {cell:?}"),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("engines disagree on {cell:?}: {a:?} vs {b:?}"),
            }
        }
    }

    // 1+2. Legacy vs today's engine over the same cells, same thread.
    // The two loops are timed back-to-back inside each trial and the
    // gated speedup is the *median of per-trial ratios*: a shared, noisy
    // machine drifts by more than the ±20% snapshot gate across seconds,
    // and pairing cancels that common mode where independent best-of
    // loops cannot. Raw rates are reported from the best trial. The
    // legacy memo starts fresh per trial, as every pre-PR sweep started
    // cold; the fast side uses the same memo-free context `repro sweep`
    // streams through.
    const TRIALS: usize = 5;
    let mut legacy_secs = f64::INFINITY;
    let mut fast_secs = f64::INFINITY;
    let mut ratios = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        let mut memo = LegacyMemo::new();
        let start = Instant::now();
        for cell in &chunk {
            let _ = black_box(legacy_price_cell(cell, &mut memo));
        }
        let legacy_trial = start.elapsed().as_secs_f64();

        let ctx = Ctx::without_memo();
        let start = Instant::now();
        for cell in &chunk {
            let _ = black_box(sweep::price_cell(&ctx, cell));
        }
        let fast_trial = start.elapsed().as_secs_f64();

        legacy_secs = legacy_secs.min(legacy_trial);
        fast_secs = fast_secs.min(fast_trial);
        ratios.push(legacy_trial / fast_trial);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let speedup = ratios[TRIALS / 2];

    // 3. Streaming the complete million-cell grid to a sink.
    let stream_ctx = Ctx::without_memo();
    let start = Instant::now();
    let summary = sweep::run_streamed(
        &Pool::with_workers(1),
        &stream_ctx,
        &grid,
        None,
        &mut std::io::sink(),
        SHARD,
    )
    .expect("sink never fails");
    let stream_secs = start.elapsed().as_secs_f64();
    let (attempts, hits) = stream_ctx.fast_stats();

    let mut snap = Snapshot::new("bench_sweep.v1");
    snap.push("grid_cells", grid.len() as f64);
    snap.push("chunk_cells", chunk.len() as f64);
    snap.push("legacy_cells_per_sec", chunk.len() as f64 / legacy_secs);
    snap.push("fast_cells_per_sec", chunk.len() as f64 / fast_secs);
    snap.push("speedup_per_cell", speedup);
    snap.push("stream_cells", summary.cells as f64);
    snap.push("stream_cells_per_sec", summary.cells as f64 / stream_secs);
    snap.push("stream_errors", summary.errors as f64);
    snap.push("stream_peak_resident", summary.peak_resident as f64);
    snap.push("fastpath_hit_rate", hits as f64 / attempts.max(1) as f64);
    snap
}

/// Scale-invariant fields `--check` gates at ±20%; raw rates are
/// machine-dependent and recorded only.
const GATED: &[&str] = &[
    "grid_cells",
    "chunk_cells",
    "speedup_per_cell",
    "stream_cells",
    "stream_errors",
    "stream_peak_resident",
    "fastpath_hit_rate",
];

fn main() {
    snapshot::run("BENCH_sweep.json", GATED, measure);
}
