//! Regenerate (and time) Figures 1-5.

use mlperf_testkit::bench::Runner;
use mlperf_testkit::{bench_group, bench_main};
use mlperf_suite::experiments as exp;
use std::hint::black_box;

fn bench_figures(c: &mut Runner) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("figure1_pca", |b| {
        b.iter(|| {
            let f = exp::figure1::run().expect("figure runs");
            black_box(exp::figure1::render(&f))
        })
    });
    g.bench_function("figure2_roofline", |b| {
        b.iter(|| {
            let f = exp::figure2::run().expect("figure runs");
            black_box(exp::figure2::render(&f))
        })
    });
    g.bench_function("figure3_amp", |b| {
        b.iter(|| {
            let f = exp::figure3::run().expect("figure runs");
            black_box(exp::figure3::render(&f))
        })
    });
    g.bench_function("figure4_scheduling", |b| {
        b.iter(|| {
            let f = exp::figure4::run().expect("figure runs");
            black_box(exp::figure4::render(&f))
        })
    });
    g.bench_function("figure5_topology", |b| {
        b.iter(|| {
            let f = exp::figure5::run().expect("figure runs");
            black_box(exp::figure5::render(&f))
        })
    });
    g.finish();
}

bench_group!(benches, bench_figures);
bench_main!(benches);
