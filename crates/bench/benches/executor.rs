//! Executor benchmarks: what the memoized DAG scheduler buys on the
//! full-report path, plus the micro-costs it adds (a cache hit, the pool's
//! scheduling overhead).
//!
//! The headline pair regenerates the complete report twice per sample —
//! once the way a naive runner would (one worker, every simulation point
//! recomputed per experiment) and once the way `repro --report` actually
//! runs (environment worker count, shared memo cache). The ratio is the
//! acceptance number for the executor work; on a single-core host it is
//! carried entirely by memoization.

use mlperf_suite::runner::{Ctx, Pool, TrainPoint};
use mlperf_suite::{report_gen, BenchmarkId};
use mlperf_testkit::bench::Runner;
use mlperf_testkit::{bench_group, bench_main};
use std::hint::black_box;

fn bench_full_report(c: &mut Runner) {
    let mut g = c.benchmark_group("executor_report");
    g.sample_size(5);
    g.bench_function("serial_unmemoized", |b| {
        b.iter(|| {
            let ctx = Ctx::without_memo();
            black_box(report_gen::build_with(&Pool::with_workers(1), &ctx).expect("report builds"))
        })
    });
    g.bench_function("pooled_memoized", |b| {
        let pool = Pool::from_env();
        b.iter(|| {
            let ctx = Ctx::new();
            black_box(report_gen::build_with(&pool, &ctx).expect("report builds"))
        })
    });
    g.finish();
}

fn bench_memo_hit(c: &mut Runner) {
    let ctx = Ctx::new();
    let point = TrainPoint::new(BenchmarkId::MlpfRes50Mx, mlperf_hw::SystemId::Dss8440, 8);
    ctx.step(&point).expect("warm the cache");
    let mut g = c.benchmark_group("executor_micro");
    g.bench_function("memo_hit", |b| {
        b.iter(|| black_box(ctx.step(&point).expect("cached")))
    });
    g.bench_function("pool_run_all_64_trivial", |b| {
        let pool = Pool::from_env();
        b.iter(|| {
            let tasks: Vec<_> = (0..64u64).map(|i| move || i * i).collect();
            black_box(pool.run_all(tasks))
        })
    });
    g.finish();
}

bench_group!(benches, bench_full_report, bench_memo_hit);
bench_main!(benches);
