//! Seedable deterministic PRNG: SplitMix64 seeding, xoshiro256++ output.
//!
//! The generator is the textbook xoshiro256++ (Blackman & Vigna), its
//! 256-bit state filled from successive SplitMix64 outputs of the seed —
//! the seeding procedure the xoshiro authors recommend. Both algorithms
//! are pinned by reference vectors in `tests/self_tests.rs`, so the byte
//! streams tests and synthetic datasets depend on can never drift
//! silently.
//!
//! Stream splitting: [`Rng::stream`] derives an independent generator
//! from `(seed, stream)` by mixing both through the SplitMix64 finalizer.
//! Per-shard / per-record generators built this way are random-access —
//! record *i* of a dataset is a pure function of `(seed, i)`, regardless
//! of generation order.

use std::ops::{Range, RangeInclusive};

/// The SplitMix64 additive constant (golden-ratio increment).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Advance a SplitMix64 state and return the next output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The stateless SplitMix64 finalizer: one full mix of a single value.
/// Used to derive stream seeds; bijective, so distinct inputs never
/// collide.
pub fn mix64(z: u64) -> u64 {
    let mut state = z;
    splitmix64(&mut state)
}

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed (SplitMix64-expanded into the
    /// 256-bit state, per the xoshiro authors' recommendation).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// An independent generator for sub-stream `stream` of `seed`.
    ///
    /// `stream(s, a)` and `stream(s, b)` are uncorrelated for `a != b`,
    /// and each is a pure function of its arguments — the basis for
    /// per-shard and per-record determinism.
    pub fn stream(seed: u64, stream: u64) -> Self {
        Rng::new(mix64(seed) ^ mix64(!stream))
    }

    /// Split off a child generator, advancing this one. The child is
    /// seeded from the parent's output stream, so repeated splits yield
    /// distinct, reproducible children.
    pub fn split(&mut self) -> Self {
        let seed = self.gen_u64();
        Rng::new(mix64(seed))
    }

    /// The next 64 uniformly random bits (xoshiro256++).
    pub fn gen_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 explicit mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `range`. Half-open ranges (`lo..hi`) exclude
    /// `hi`; inclusive ranges (`lo..=hi`) can return `hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Fill `dst` with random bytes (little-endian chunks of the `u64`
    /// stream, so the byte stream is as reproducible as the word stream).
    pub fn fill_bytes(&mut self, dst: &mut [u8]) {
        for chunk in dst.chunks_mut(8) {
            let word = self.gen_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn sample<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "cannot sample from an empty slice");
        &xs[self.gen_range(0..xs.len())]
    }
}

/// Ranges [`Rng::gen_range`] can draw from.
pub trait SampleRange {
    /// The element type the range produces.
    type Output;
    /// Draw one uniform value from the range.
    fn sample_from(self, rng: &mut Rng) -> Self::Output;
}

/// Map a raw draw onto `[0, width)`; `width == 0` encodes the full 2⁶⁴
/// span (only reachable from `u64` inclusive ranges).
fn below(draw: u64, width: u128) -> u128 {
    debug_assert!(width <= 1 << 64);
    if width == 0 || width > u64::MAX as u128 {
        draw as u128
    } else {
        (draw % width as u64) as u128
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng.gen_u64(), width) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + below(rng.gen_u64(), width) as i128) as $t
            }
        }
    )+}
}

impl_int_sample_range!(u32, u64, usize, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let mut a1 = Rng::stream(42, 0);
        let mut a2 = Rng::stream(42, 0);
        let mut b = Rng::stream(42, 1);
        assert_eq!(a1.gen_u64(), a2.gen_u64());
        let mut a = Rng::stream(42, 0);
        assert_ne!(
            (0..4).map(|_| a.gen_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.gen_u64()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn split_children_differ_and_replay_identically() {
        let mut parent = Rng::new(3);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.gen_u64(), c2.gen_u64());

        let mut replay = Rng::new(3);
        let mut r1 = replay.split();
        let mut fresh = Rng::new(3);
        assert_eq!(fresh.split().gen_u64(), r1.gen_u64());
    }
}
