//! Seeded chaos injection: deterministic failure scripting for harness
//! tests.
//!
//! A [`ChaosPlan`] decides, at named draw points, whether the surrounding
//! code should proceed normally or fail — by panicking, by returning a
//! typed error, or by emitting a non-finite value — with every decision
//! drawn through a [`FaultScript`](crate::fault::FaultScript) so the whole
//! failure scenario replays byte-identically from its seed. The executor's
//! resilience suite wraps real experiments in a chaos adapter driven by
//! this type and property-tests that an injected failure in one corner of
//! the DAG leaves every healthy subgraph's output bytes untouched.
//!
//! The plan is deliberately generic: it knows nothing about experiments,
//! pools, or simulators. Consumers map [`ChaosAction`]s onto their own
//! failure channels.

use crate::fault::FaultScript;

/// What the instrumented site should do at one decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Run normally.
    Proceed,
    /// Panic (exercises unwind isolation).
    Panic,
    /// Return a typed error (exercises error plumbing).
    Error,
    /// Emit a non-finite value (exercises numeric-integrity guards).
    NonFinite,
}

impl ChaosAction {
    /// The action's stable lowercase name (for traces and assertions).
    pub fn name(self) -> &'static str {
        match self {
            ChaosAction::Proceed => "proceed",
            ChaosAction::Panic => "panic",
            ChaosAction::Error => "error",
            ChaosAction::NonFinite => "non-finite",
        }
    }
}

/// A seeded schedule of failure injections.
///
/// Probabilities are per decision point and drawn in the fixed order
/// panic → error → non-finite, so a plan's behaviour is a pure function of
/// `(seed, rates, call sequence)`.
///
/// # Examples
///
/// ```
/// use mlperf_testkit::chaos::{ChaosAction, ChaosPlan};
///
/// let mut a = ChaosPlan::new(7).with_rates(0.5, 0.0, 0.0);
/// let mut b = ChaosPlan::new(7).with_rates(0.5, 0.0, 0.0);
/// let xs: Vec<ChaosAction> = (0..16).map(|_| a.decide("site")).collect();
/// let ys: Vec<ChaosAction> = (0..16).map(|_| b.decide("site")).collect();
/// assert_eq!(xs, ys);
/// assert_eq!(a.trace_bytes(), b.trace_bytes());
/// ```
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    script: FaultScript,
    panic_rate: f64,
    error_rate: f64,
    non_finite_rate: f64,
}

impl ChaosPlan {
    /// A plan that never injects (all rates zero) for `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            script: FaultScript::new(seed),
            panic_rate: 0.0,
            error_rate: 0.0,
            non_finite_rate: 0.0,
        }
    }

    /// Set the per-decision injection probabilities. Rates are clamped to
    /// `[0, 1]` and applied in panic → error → non-finite order.
    #[must_use]
    pub fn with_rates(mut self, panic: f64, error: f64, non_finite: f64) -> Self {
        self.panic_rate = panic.clamp(0.0, 1.0);
        self.error_rate = error.clamp(0.0, 1.0);
        self.non_finite_rate = non_finite.clamp(0.0, 1.0);
        self
    }

    /// A plan that *always* injects `action` (degenerate rates) — the
    /// building block for "force this one experiment to fail" tests.
    pub fn always(seed: u64, action: ChaosAction) -> Self {
        let plan = ChaosPlan::new(seed);
        match action {
            ChaosAction::Proceed => plan,
            ChaosAction::Panic => plan.with_rates(1.0, 0.0, 0.0),
            ChaosAction::Error => plan.with_rates(0.0, 1.0, 0.0),
            ChaosAction::NonFinite => plan.with_rates(0.0, 0.0, 1.0),
        }
    }

    /// The seed the plan replays.
    pub fn seed(&self) -> u64 {
        self.script.seed()
    }

    /// Decide what the site labeled `site` should do, consuming one draw.
    ///
    /// The draw is recorded in the underlying script's trace under the
    /// site label, so a failing scenario names the exact decision points
    /// that fired.
    pub fn decide(&mut self, site: &'static str) -> ChaosAction {
        let u = self.script.draw_unit(site);
        if u < self.panic_rate {
            ChaosAction::Panic
        } else if u < self.panic_rate + self.error_rate {
            ChaosAction::Error
        } else if u < self.panic_rate + self.error_rate + self.non_finite_rate {
            ChaosAction::NonFinite
        } else {
            ChaosAction::Proceed
        }
    }

    /// Number of decisions taken so far.
    pub fn decisions(&self) -> usize {
        self.script.draws().len()
    }

    /// The recorded decision trace (seed line + one `site=draw` line per
    /// decision), byte-identical across replays of one seed.
    pub fn trace_bytes(&self) -> Vec<u8> {
        self.script.trace_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_plan_always_proceeds() {
        let mut plan = ChaosPlan::new(3);
        for _ in 0..64 {
            assert_eq!(plan.decide("s"), ChaosAction::Proceed);
        }
        assert_eq!(plan.decisions(), 64);
    }

    #[test]
    fn always_plans_are_degenerate() {
        for action in [ChaosAction::Panic, ChaosAction::Error, ChaosAction::NonFinite] {
            let mut plan = ChaosPlan::always(9, action);
            for _ in 0..32 {
                assert_eq!(plan.decide("s"), action, "{}", action.name());
            }
        }
    }

    #[test]
    fn equal_seeds_replay_identically() {
        let mut a = ChaosPlan::new(11).with_rates(0.3, 0.3, 0.3);
        let mut b = ChaosPlan::new(11).with_rates(0.3, 0.3, 0.3);
        let xs: Vec<_> = (0..128).map(|_| a.decide("x")).collect();
        let ys: Vec<_> = (0..128).map(|_| b.decide("x")).collect();
        assert_eq!(xs, ys);
        assert_eq!(a.trace_bytes(), b.trace_bytes());
    }

    #[test]
    fn mixed_rates_produce_every_action() {
        let mut plan = ChaosPlan::new(5).with_rates(0.25, 0.25, 0.25);
        let mut seen = [false; 4];
        for _ in 0..256 {
            match plan.decide("mix") {
                ChaosAction::Proceed => seen[0] = true,
                ChaosAction::Panic => seen[1] = true,
                ChaosAction::Error => seen[2] = true,
                ChaosAction::NonFinite => seen[3] = true,
            }
        }
        assert_eq!(seen, [true; 4]);
    }
}
