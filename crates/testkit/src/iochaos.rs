//! Seeded I/O fault injection: deterministic storage-failure scripting
//! for durability tests.
//!
//! Where [`chaos`](crate::chaos) injects *compute* failures (panics,
//! typed errors, non-finite values), an [`IoChaosPlan`] injects *storage*
//! failures at the filesystem seam of a persistent artifact store: short
//! writes, torn renames (a simulated crash between the temp-file write
//! and the publishing rename), bit flips on read, `ENOSPC`, and
//! unreadable files. Every decision is drawn through a
//! [`FaultScript`](crate::fault::FaultScript), so a whole corruption
//! scenario replays byte-identically from its seed and the recorded
//! trace names the exact operations that were sabotaged.
//!
//! The plan is deliberately generic: it knows nothing about caches or
//! entry formats. Consumers map the fault variants onto their own I/O
//! calls; the draw order per operation is fixed and documented on each
//! `decide_*` method, so behaviour is a pure function of
//! `(seed, rates, call sequence)`.
//!
//! [`IoChaosSpec::parse`] is the typed front door for the
//! `MLPERF_IO_CHAOS` environment knob: a comma-separated `key=value`
//! list (`seed=7,bit_flip=0.25,torn_rename=0.1`). Malformed specs are
//! rejected with a typed [`IoChaosParseError`] — never silently
//! defaulted, because a typo'd chaos spec that injects nothing would
//! make a durability gate vacuously green.

use crate::fault::FaultScript;
use std::fmt;

/// What an instrumented read should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// Read normally.
    Proceed,
    /// Fail the read outright (permissions / media error).
    Unreadable,
    /// Read, then flip one bit of the returned buffer. `bit` is a raw
    /// draw; the consumer reduces it modulo the buffer's bit length.
    BitFlip {
        /// Raw 64-bit draw selecting the bit to flip.
        bit: u64,
    },
}

/// What an instrumented write should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write normally.
    Proceed,
    /// Persist only a prefix of the buffer (simulated power cut mid
    /// write). `keep` is a raw draw; the consumer reduces it modulo the
    /// buffer length.
    Short {
        /// Raw 64-bit draw selecting how many bytes survive.
        keep: u64,
    },
    /// Fail with no bytes persisted (`ENOSPC`).
    Enospc,
}

/// What an instrumented rename (the atomic publish step) should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenameFault {
    /// Rename normally.
    Proceed,
    /// Simulated crash *before* the rename: the temp file stays on disk
    /// as an orphan and the destination is never updated.
    Torn,
}

/// A parsed `MLPERF_IO_CHAOS` spec: the seed plus one injection rate per
/// fault channel, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoChaosSpec {
    /// Seed the replayable plan draws from.
    pub seed: u64,
    /// Probability a write persists only a prefix.
    pub short_write: f64,
    /// Probability the publishing rename is skipped (simulated crash).
    pub torn_rename: f64,
    /// Probability a read comes back with one bit flipped.
    pub bit_flip: f64,
    /// Probability a write fails with no bytes persisted.
    pub enospc: f64,
    /// Probability a read fails outright.
    pub unreadable: f64,
}

impl Default for IoChaosSpec {
    fn default() -> Self {
        IoChaosSpec {
            seed: 0,
            short_write: 0.0,
            torn_rename: 0.0,
            bit_flip: 0.0,
            enospc: 0.0,
            unreadable: 0.0,
        }
    }
}

/// Why an `MLPERF_IO_CHAOS` spec was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoChaosParseError {
    /// An item was not `key=value`.
    Malformed(String),
    /// `key` is not a recognized fault channel (or `seed`).
    UnknownKey(String),
    /// The value did not parse as the key's type.
    BadValue {
        /// The offending key.
        key: String,
        /// The unparseable value text.
        value: String,
    },
    /// A rate parsed but fell outside `[0, 1]` (or was non-finite).
    OutOfRange {
        /// The offending key.
        key: String,
        /// The out-of-range value text.
        value: String,
    },
    /// The same key appeared twice.
    DuplicateKey(String),
}

impl fmt::Display for IoChaosParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoChaosParseError::Malformed(item) => {
                write!(f, "expected key=value, got {item:?}")
            }
            IoChaosParseError::UnknownKey(key) => write!(
                f,
                "unknown key {key:?} (expected seed, short_write, torn_rename, \
                 bit_flip, enospc, or unreadable)"
            ),
            IoChaosParseError::BadValue { key, value } => {
                write!(f, "{key}={value:?} does not parse")
            }
            IoChaosParseError::OutOfRange { key, value } => {
                write!(f, "{key}={value} is outside [0, 1]")
            }
            IoChaosParseError::DuplicateKey(key) => write!(f, "{key} given twice"),
        }
    }
}

impl std::error::Error for IoChaosParseError {}

impl IoChaosSpec {
    /// Parse a spec from `MLPERF_IO_CHAOS` text: comma-separated
    /// `key=value` items where `seed` takes a u64 and every fault
    /// channel takes a rate in `[0, 1]`. Blank (or all-whitespace) text
    /// means "no injection" and parses to `None`; anything else must be
    /// fully well-formed or the whole spec is rejected.
    ///
    /// # Errors
    ///
    /// Returns a typed [`IoChaosParseError`] naming the first offending
    /// item — malformed, unknown, unparseable, out of range, or
    /// duplicated.
    pub fn parse(text: &str) -> Result<Option<IoChaosSpec>, IoChaosParseError> {
        if text.trim().is_empty() {
            return Ok(None);
        }
        let mut spec = IoChaosSpec::default();
        let mut seen: Vec<String> = Vec::new();
        for item in text.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let Some((key, value)) = item.split_once('=') else {
                return Err(IoChaosParseError::Malformed(item.to_string()));
            };
            let (key, value) = (key.trim(), value.trim());
            if seen.iter().any(|k| k == key) {
                return Err(IoChaosParseError::DuplicateKey(key.to_string()));
            }
            seen.push(key.to_string());
            if key == "seed" {
                spec.seed = value.parse::<u64>().map_err(|_| IoChaosParseError::BadValue {
                    key: key.to_string(),
                    value: value.to_string(),
                })?;
                continue;
            }
            let slot = match key {
                "short_write" => &mut spec.short_write,
                "torn_rename" => &mut spec.torn_rename,
                "bit_flip" => &mut spec.bit_flip,
                "enospc" => &mut spec.enospc,
                "unreadable" => &mut spec.unreadable,
                _ => return Err(IoChaosParseError::UnknownKey(key.to_string())),
            };
            let rate = value.parse::<f64>().map_err(|_| IoChaosParseError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
            })?;
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(IoChaosParseError::OutOfRange {
                    key: key.to_string(),
                    value: value.to_string(),
                });
            }
            *slot = rate;
        }
        Ok(Some(spec))
    }
}

/// A seeded schedule of storage-fault injections.
///
/// # Examples
///
/// ```
/// use mlperf_testkit::iochaos::{IoChaosPlan, WriteFault};
///
/// let mut a = IoChaosPlan::new(7).with_write_rates(0.5, 0.0);
/// let mut b = IoChaosPlan::new(7).with_write_rates(0.5, 0.0);
/// let xs: Vec<WriteFault> = (0..16).map(|_| a.decide_write()).collect();
/// let ys: Vec<WriteFault> = (0..16).map(|_| b.decide_write()).collect();
/// assert_eq!(xs, ys);
/// assert_eq!(a.trace_bytes(), b.trace_bytes());
/// ```
#[derive(Debug, Clone)]
pub struct IoChaosPlan {
    script: FaultScript,
    spec: IoChaosSpec,
}

impl IoChaosPlan {
    /// A plan that never injects (all rates zero) for `seed`.
    pub fn new(seed: u64) -> Self {
        IoChaosPlan {
            script: FaultScript::new(seed),
            spec: IoChaosSpec {
                seed,
                ..IoChaosSpec::default()
            },
        }
    }

    /// A plan replaying exactly the given spec.
    pub fn from_spec(spec: IoChaosSpec) -> Self {
        IoChaosPlan {
            script: FaultScript::new(spec.seed),
            spec,
        }
    }

    /// Set the write-side rates (`ENOSPC`, short write), clamped to
    /// `[0, 1]`.
    #[must_use]
    pub fn with_write_rates(mut self, short_write: f64, enospc: f64) -> Self {
        self.spec.short_write = short_write.clamp(0.0, 1.0);
        self.spec.enospc = enospc.clamp(0.0, 1.0);
        self
    }

    /// Set the read-side rates (unreadable, bit flip), clamped to
    /// `[0, 1]`.
    #[must_use]
    pub fn with_read_rates(mut self, unreadable: f64, bit_flip: f64) -> Self {
        self.spec.unreadable = unreadable.clamp(0.0, 1.0);
        self.spec.bit_flip = bit_flip.clamp(0.0, 1.0);
        self
    }

    /// Set the torn-rename (crash-point) rate, clamped to `[0, 1]`.
    #[must_use]
    pub fn with_torn_rename(mut self, torn_rename: f64) -> Self {
        self.spec.torn_rename = torn_rename.clamp(0.0, 1.0);
        self
    }

    /// The seed the plan replays.
    pub fn seed(&self) -> u64 {
        self.script.seed()
    }

    /// The spec the plan was built from.
    pub fn spec(&self) -> IoChaosSpec {
        self.spec
    }

    /// Decide one read's fate. Draw order: unreadable → bit flip, with
    /// one extra draw (`io.read.bit`) selecting the bit when a flip
    /// fires.
    pub fn decide_read(&mut self) -> ReadFault {
        let u = self.script.draw_unit("io.read");
        if u < self.spec.unreadable {
            ReadFault::Unreadable
        } else if u < self.spec.unreadable + self.spec.bit_flip {
            ReadFault::BitFlip {
                bit: self.script.draw("io.read.bit"),
            }
        } else {
            ReadFault::Proceed
        }
    }

    /// Decide one write's fate. Draw order: `ENOSPC` → short write, with
    /// one extra draw (`io.write.keep`) selecting the surviving prefix
    /// when a short write fires.
    pub fn decide_write(&mut self) -> WriteFault {
        let u = self.script.draw_unit("io.write");
        if u < self.spec.enospc {
            WriteFault::Enospc
        } else if u < self.spec.enospc + self.spec.short_write {
            WriteFault::Short {
                keep: self.script.draw("io.write.keep"),
            }
        } else {
            WriteFault::Proceed
        }
    }

    /// Decide one publishing rename's fate (one draw, `io.rename`).
    pub fn decide_rename(&mut self) -> RenameFault {
        if self.script.draw_unit("io.rename") < self.spec.torn_rename {
            RenameFault::Torn
        } else {
            RenameFault::Proceed
        }
    }

    /// Number of decisions (including sub-draws) taken so far.
    pub fn decisions(&self) -> usize {
        self.script.draws().len()
    }

    /// The recorded decision trace, byte-identical across replays of one
    /// seed.
    pub fn trace_bytes(&self) -> Vec<u8> {
        self.script.trace_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_plan_always_proceeds() {
        let mut plan = IoChaosPlan::new(3);
        for _ in 0..32 {
            assert_eq!(plan.decide_read(), ReadFault::Proceed);
            assert_eq!(plan.decide_write(), WriteFault::Proceed);
            assert_eq!(plan.decide_rename(), RenameFault::Proceed);
        }
        assert_eq!(plan.decisions(), 96);
    }

    #[test]
    fn degenerate_rates_always_fire() {
        let mut plan = IoChaosPlan::new(9).with_write_rates(0.0, 1.0);
        for _ in 0..16 {
            assert_eq!(plan.decide_write(), WriteFault::Enospc);
        }
        let mut plan = IoChaosPlan::new(9).with_read_rates(1.0, 0.0);
        for _ in 0..16 {
            assert_eq!(plan.decide_read(), ReadFault::Unreadable);
        }
        let mut plan = IoChaosPlan::new(9).with_torn_rename(1.0);
        for _ in 0..16 {
            assert_eq!(plan.decide_rename(), RenameFault::Torn);
        }
    }

    #[test]
    fn equal_seeds_replay_identically() {
        let spec = IoChaosSpec {
            seed: 11,
            short_write: 0.3,
            torn_rename: 0.2,
            bit_flip: 0.3,
            enospc: 0.2,
            unreadable: 0.2,
        };
        let mut a = IoChaosPlan::from_spec(spec);
        let mut b = IoChaosPlan::from_spec(spec);
        for _ in 0..64 {
            assert_eq!(a.decide_read(), b.decide_read());
            assert_eq!(a.decide_write(), b.decide_write());
            assert_eq!(a.decide_rename(), b.decide_rename());
        }
        assert_eq!(a.trace_bytes(), b.trace_bytes());
    }

    #[test]
    fn mixed_rates_produce_every_fault() {
        let mut plan = IoChaosPlan::new(5)
            .with_write_rates(0.35, 0.35)
            .with_read_rates(0.35, 0.35)
            .with_torn_rename(0.5);
        let (mut short, mut enospc, mut flip, mut unreadable, mut torn) =
            (false, false, false, false, false);
        for _ in 0..128 {
            match plan.decide_write() {
                WriteFault::Short { .. } => short = true,
                WriteFault::Enospc => enospc = true,
                WriteFault::Proceed => {}
            }
            match plan.decide_read() {
                ReadFault::BitFlip { .. } => flip = true,
                ReadFault::Unreadable => unreadable = true,
                ReadFault::Proceed => {}
            }
            if plan.decide_rename() == RenameFault::Torn {
                torn = true;
            }
        }
        assert!(short && enospc && flip && unreadable && torn);
    }

    #[test]
    fn blank_spec_text_is_no_injection() {
        assert_eq!(IoChaosSpec::parse(""), Ok(None));
        assert_eq!(IoChaosSpec::parse("   \t "), Ok(None));
    }

    #[test]
    fn full_spec_round_trips() {
        let spec = IoChaosSpec::parse("seed=7, bit_flip=0.25, torn_rename=0.1")
            .unwrap()
            .unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.bit_flip, 0.25);
        assert_eq!(spec.torn_rename, 0.1);
        assert_eq!(spec.short_write, 0.0);
        assert_eq!(spec.enospc, 0.0);
        assert_eq!(spec.unreadable, 0.0);
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        assert_eq!(
            IoChaosSpec::parse("bit_flip"),
            Err(IoChaosParseError::Malformed("bit_flip".to_string()))
        );
        assert_eq!(
            IoChaosSpec::parse("bitflip=0.5"),
            Err(IoChaosParseError::UnknownKey("bitflip".to_string()))
        );
        assert_eq!(
            IoChaosSpec::parse("bit_flip=lots"),
            Err(IoChaosParseError::BadValue {
                key: "bit_flip".to_string(),
                value: "lots".to_string(),
            })
        );
        assert_eq!(
            IoChaosSpec::parse("bit_flip=1.5"),
            Err(IoChaosParseError::OutOfRange {
                key: "bit_flip".to_string(),
                value: "1.5".to_string(),
            })
        );
        assert_eq!(
            IoChaosSpec::parse("bit_flip=NaN"),
            Err(IoChaosParseError::OutOfRange {
                key: "bit_flip".to_string(),
                value: "NaN".to_string(),
            })
        );
        assert_eq!(
            IoChaosSpec::parse("seed=1,seed=2"),
            Err(IoChaosParseError::DuplicateKey("seed".to_string()))
        );
        // Seed overflow is a typed error, not a silent wrap.
        assert_eq!(
            IoChaosSpec::parse("seed=99999999999999999999999999"),
            Err(IoChaosParseError::BadValue {
                key: "seed".to_string(),
                value: "99999999999999999999999999".to_string(),
            })
        );
    }
}
