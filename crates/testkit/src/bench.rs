//! A tiny wall-clock micro-benchmark runner standing in for `criterion`.
//!
//! Targets keep `harness = false` and the familiar shape — a `Runner`
//! instead of `Criterion`, `benchmark_group` / `sample_size` /
//! `bench_function` / `iter` unchanged — wired up by
//! [`bench_group!`](crate::bench_group) and
//! [`bench_main!`](crate::bench_main). Each benchmark warms up, takes N
//! timed samples, and prints one JSON line
//! (`{"group":…,"bench":…,"samples":…,"min_ns":…,"median_ns":…,"p95_ns":…,"mean_ns":…}`)
//! so runs can be diffed or collected by scripts without a parser
//! dependency.
//!
//! Env knobs: `MLPERF_BENCH_SAMPLES` (default 20) and
//! `MLPERF_BENCH_WARMUP` (default 2) override the per-benchmark sample
//! and warmup iteration counts. Under `cargo test` (the binary sees
//! `--test`) benchmarks are skipped so the tier-1 gate stays fast; a
//! positional argument filters benchmarks by substring, like criterion.

use std::time::Instant;

/// Top-level bench state: CLI mode, filter, and a result counter.
#[derive(Debug)]
pub struct Runner {
    filter: Option<String>,
    test_mode: bool,
    samples: usize,
    warmup: usize,
    ran: usize,
    skipped: usize,
}

impl Runner {
    /// Build from `std::env::args`: `--test` selects skip mode (cargo
    /// test), the first non-flag argument is a substring filter, and all
    /// other flags (`--bench`, …) are ignored.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let parse = |name: &str| std::env::var(name).ok().and_then(|s| s.parse().ok());
        Runner {
            filter: args.iter().find(|a| !a.starts_with('-')).cloned(),
            test_mode: args.iter().any(|a| a == "--test"),
            samples: parse("MLPERF_BENCH_SAMPLES").unwrap_or(20),
            warmup: parse("MLPERF_BENCH_WARMUP").unwrap_or(2),
            ran: 0,
            skipped: 0,
        }
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group<'_> {
        let samples = self.samples;
        Group {
            runner: self,
            name: name.into(),
            sample_size: samples,
        }
    }

    /// Print the run summary. Call once after all groups.
    pub fn finish(self) {
        if self.test_mode {
            println!("benchmarks skipped in test mode ({} registered)", self.skipped);
        } else {
            println!("{} benchmark(s) run, {} filtered out", self.ran, self.skipped);
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct Group<'a> {
    runner: &'a mut Runner,
    name: String,
    sample_size: usize,
}

impl Group<'_> {
    /// Override the sample count for this group (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] around the code under test.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let matches = self
            .runner
            .filter
            .as_ref()
            .is_none_or(|flt| full.contains(flt.as_str()));
        if self.runner.test_mode || !matches {
            self.runner.skipped += 1;
            return self;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warmup: self.runner.warmup,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        report(&self.name, &id.to_string(), &mut bencher.samples_ns);
        self.runner.ran += 1;
        self
    }

    /// End the group. (Kept for criterion-shaped call sites; groups need
    /// no teardown.)
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the measured callback.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warmup: usize,
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Run warmup iterations, then time `sample_size` calls of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }
}

/// Sorted-sample order statistic; `q` in `[0, 1]`.
fn percentile(sorted: &[u128], q: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn report(group: &str, bench: &str, samples_ns: &mut [u128]) {
    samples_ns.sort_unstable();
    let n = samples_ns.len();
    let mean = if n == 0 {
        0
    } else {
        samples_ns.iter().sum::<u128>() / n as u128
    };
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    println!(
        "{{\"group\":\"{}\",\"bench\":\"{}\",\"samples\":{},\"min_ns\":{},\"median_ns\":{},\"p95_ns\":{},\"mean_ns\":{}}}",
        escape(group),
        escape(bench),
        n,
        samples_ns.first().copied().unwrap_or(0),
        percentile(samples_ns, 0.5),
        percentile(samples_ns, 0.95),
        mean,
    );
}

/// Bundle bench functions into a group entry point, mirroring
/// `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(runner: &mut $crate::bench::Runner) {
            $( $target(runner); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target, mirroring
/// `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut runner = $crate::bench::Runner::from_args();
            $( $group(&mut runner); )+
            runner.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_order_statistics() {
        let sorted = [10u128, 20, 30, 40, 50];
        assert_eq!(percentile(&sorted, 0.0), 10);
        assert_eq!(percentile(&sorted, 0.5), 30);
        assert_eq!(percentile(&sorted, 1.0), 50);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn bencher_collects_the_requested_samples() {
        let mut b = Bencher {
            sample_size: 7,
            warmup: 1,
            samples_ns: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples_ns.len(), 7);
        assert_eq!(calls, 8, "warmup + samples");
    }
}
