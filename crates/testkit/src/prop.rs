//! Minimal property-testing harness, proptest-flavoured, zero
//! dependencies.
//!
//! Generators implement [`Gen`] and draw `u64`s from a [`TestRng`] that
//! records every draw. When a property fails, the harness shrinks the
//! recorded *draw stream* greedily — zeroing, halving, and decrementing
//! draws while the failure persists — and replays generation over the
//! mutated stream. Because integer generators map a draw of `0` to their
//! range start and vector generators draw their length first, this one
//! mechanism shrinks integers toward minimal values and vectors toward
//! fewer elements, and it composes through [`Gen::prop_map`] /
//! [`Gen::prop_flat_map`] with no per-type shrinker code.
//!
//! Failure reporting: every failure names the case seed; re-running with
//! `MLPERF_PROP_SEED=<seed>` replays the failing case first. Case count
//! defaults to 96 and is tunable with `MLPERF_PROP_CASES` (the tier-1
//! gate requires ≥ 64). To pin a shrunk counterexample permanently,
//! encode it as a named `#[test]` that calls the same checker the
//! property uses — see `crates/analysis/tests/properties.rs` for the
//! pattern.

use crate::rng::{mix64, Rng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

// ---------------------------------------------------------------------------
// Draw stream
// ---------------------------------------------------------------------------

/// The draw source generators consume: fresh (seeded PRNG) while
/// exploring, replay (a recorded stream, zero-padded past its end) while
/// shrinking. Every draw handed out is recorded.
#[derive(Debug)]
pub struct TestRng {
    fresh: Option<Rng>,
    replay: Vec<u64>,
    pos: usize,
    record: Vec<u64>,
}

impl TestRng {
    /// A fresh, seeded stream.
    pub fn fresh(seed: u64) -> Self {
        TestRng {
            fresh: Some(Rng::new(seed)),
            replay: Vec::new(),
            pos: 0,
            record: Vec::new(),
        }
    }

    /// Replay a recorded stream; draws past its end are `0` (which every
    /// generator maps to its minimal value).
    pub fn replay(draws: Vec<u64>) -> Self {
        TestRng {
            fresh: None,
            replay: draws,
            pos: 0,
            record: Vec::new(),
        }
    }

    /// The next raw draw.
    pub fn next_u64(&mut self) -> u64 {
        let v = if self.pos < self.replay.len() {
            self.replay[self.pos]
        } else {
            match &mut self.fresh {
                Some(rng) => rng.gen_u64(),
                None => 0,
            }
        };
        self.pos += 1;
        self.record.push(v);
        v
    }

    /// Every draw handed out so far, in order.
    pub fn draws(&self) -> &[u64] {
        &self.record
    }
}

/// Map a raw draw onto `[0, n)`. Draw `0` maps to `0`, so shrinking a
/// draw toward zero shrinks the index toward the first alternative.
fn index(draw: u64, n: usize) -> usize {
    assert!(n > 0, "empty choice");
    (draw % n as u64) as usize
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A value generator over a recorded draw stream.
pub trait Gen {
    /// The generated type.
    type Value;

    /// Produce one value, consuming draws from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values. Named as in proptest — a plain `map`
    /// would collide with `Iterator::map` on range generators.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a generator derived from it.
    /// Named as in proptest, like [`Gen::prop_map`].
    fn prop_flat_map<G, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        G: Gen,
        F: Fn(Self::Value) -> G,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase, for heterogeneous collections like [`one_of`].
    fn boxed(self) -> BoxedGen<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedGen {
            inner: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// See [`Gen::prop_map`].
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, T, F: Fn(G::Value) -> T> Gen for Map<G, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Gen::prop_flat_map`].
pub struct FlatMap<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, H: Gen, F: Fn(G::Value) -> H> Gen for FlatMap<G, F> {
    type Value = H::Value;
    fn generate(&self, rng: &mut TestRng) -> H::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Gen::boxed`].
pub struct BoxedGen<T> {
    inner: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Gen for BoxedGen<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// A constant generator (proptest's `Just`). Consumes no draws.
pub fn just<T: Clone>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
pub struct Just<T>(T);

impl<T: Clone> Gen for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice among concrete values (proptest's
/// `prop_oneof![Just(..), ..]` for the value-only case).
pub fn elements<T: Clone>(options: &[T]) -> Elements<T> {
    assert!(!options.is_empty(), "elements() needs at least one option");
    Elements(options.to_vec())
}

/// See [`elements`].
pub struct Elements<T>(Vec<T>);

impl<T: Clone> Gen for Elements<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[index(rng.next_u64(), self.0.len())].clone()
    }
}

/// A uniform choice among generators of a common value type (proptest's
/// `prop_oneof!` general case). Shrinks toward the first alternative.
pub fn one_of<T>(options: Vec<BoxedGen<T>>) -> OneOf<T> {
    assert!(!options.is_empty(), "one_of() needs at least one generator");
    OneOf(options)
}

/// See [`one_of`].
pub struct OneOf<T>(Vec<BoxedGen<T>>);

impl<T> Gen for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = index(rng.next_u64(), self.0.len());
        self.0[i].generate(rng)
    }
}

/// Vectors of `elem`, with length drawn from `len` (proptest's
/// `collection::vec`). The length draw comes first, so shrinking it
/// drops trailing elements.
pub fn vec_of<G: Gen, L: Gen<Value = usize>>(elem: G, len: L) -> VecOf<G, L> {
    VecOf { elem, len }
}

/// See [`vec_of`].
pub struct VecOf<G, L> {
    elem: G,
    len: L,
}

impl<G: Gen, L: Gen<Value = usize>> Gen for VecOf<G, L> {
    type Value = Vec<G::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<G::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

macro_rules! impl_int_gen {
    ($($t:ty),+) => {$(
        impl Gen for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty generator range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = if width > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() % width as u64) as u128
                };
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Gen for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty generator range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let off = if width > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() % width as u64) as u128
                };
                (start as i128 + off as i128) as $t
            }
        }
    )+}
}

impl_int_gen!(u32, u64, usize, i64);

impl Gen for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty generator range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Gen for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty generator range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + unit * (end - start)
    }
}

macro_rules! impl_tuple_gen {
    ($($g:ident . $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_gen!(A.0);
impl_tuple_gen!(A.0, B.1);
impl_tuple_gen!(A.0, B.1, C.2);
impl_tuple_gen!(A.0, B.1, C.2, D.3);
impl_tuple_gen!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_gen!(A.0, B.1, C.2, D.3, E.4, F.5);

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Harness configuration, read once per property from the environment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cases to run per property (`MLPERF_PROP_CASES`, default 96).
    pub cases: u32,
    /// Base seed for case 0 (`MLPERF_PROP_SEED`, fixed default so CI runs
    /// are deterministic).
    pub seed: u64,
    /// Budget of property evaluations the shrinker may spend.
    pub max_shrink_evals: u32,
}

impl Config {
    /// Read `MLPERF_PROP_CASES` / `MLPERF_PROP_SEED`, with deterministic
    /// defaults.
    pub fn from_env() -> Self {
        fn env_u64(name: &str) -> Option<u64> {
            std::env::var(name).ok().and_then(|s| s.parse().ok())
        }
        Config {
            cases: env_u64("MLPERF_PROP_CASES").unwrap_or(96) as u32,
            seed: env_u64("MLPERF_PROP_SEED").unwrap_or(0x4D4C_5065_7266), // "MLPerf"
            max_shrink_evals: 4096,
        }
    }
}

/// A shrunk counterexample.
#[derive(Debug)]
pub struct Failure<V> {
    /// The minimal failing input the shrinker reached.
    pub minimal: V,
    /// The failure message at the minimal input.
    pub message: String,
    /// Seed that reproduces this case first (`MLPERF_PROP_SEED=<seed>`).
    pub seed: u64,
    /// Which case (0-based) first failed.
    pub case: u32,
}

/// Run `prop` over `cases` generated inputs; on failure, shrink and
/// return the minimal counterexample instead of panicking. [`check`] is
/// the panicking wrapper tests use; this entry point exists so the
/// harness can test its own shrinking.
pub fn find_failure<G>(
    cfg: &Config,
    gen: &G,
    prop: &(impl Fn(G::Value) -> Result<(), String> + ?Sized),
) -> Option<Failure<G::Value>>
where
    G: Gen,
{
    let mut case_seed = cfg.seed;
    for case in 0..cfg.cases {
        let mut rng = TestRng::fresh(case_seed);
        if let Some(message) = eval(gen, prop, &mut rng) {
            let draws = rng.draws().to_vec();
            let (min_draws, min_message) =
                shrink(gen, prop, draws, message, cfg.max_shrink_evals);
            let mut replay = TestRng::replay(min_draws);
            let minimal = gen.generate(&mut replay);
            return Some(Failure {
                minimal,
                message: min_message,
                seed: case_seed,
                case,
            });
        }
        case_seed = mix64(case_seed);
    }
    None
}

/// Run a property over generated inputs, shrinking and panicking on the
/// first failure. Used by the [`properties!`](crate::properties) macro.
///
/// # Panics
///
/// Panics with the minimal counterexample, its failure message, and the
/// seed that replays it.
pub fn check<G>(name: &str, gen: &G, prop: impl Fn(G::Value) -> Result<(), String>)
where
    G: Gen,
    G::Value: Debug,
{
    let cfg = Config::from_env();
    if let Some(failure) = find_failure(&cfg, gen, &prop) {
        panic!(
            "property {name} failed (case {} of {}): {}\n  minimal input: {:?}\n  \
             replay first with: MLPERF_PROP_SEED={} cargo test",
            failure.case, cfg.cases, failure.message, failure.minimal, failure.seed,
        );
    }
}

/// Generate from `rng` and evaluate the property, converting panics into
/// failure messages. `None` means the property held.
fn eval<G: Gen>(
    gen: &G,
    prop: &(impl Fn(G::Value) -> Result<(), String> + ?Sized),
    rng: &mut TestRng,
) -> Option<String> {
    let outcome = catch_unwind(AssertUnwindSafe(|| prop(gen.generate(rng))));
    match outcome {
        Ok(Ok(())) => None,
        Ok(Err(message)) => Some(message),
        Err(panic) => Some(panic_message(panic.as_ref())),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_string()
    }
}

/// Greedy draw-stream shrinking: for each draw position, try zero, then
/// repeatedly halve, then repeatedly decrement, keeping any mutation
/// under which the property still fails. Loops to a fixpoint or until
/// the evaluation budget runs out. Returns the minimal stream and its
/// failure message.
fn shrink<G: Gen>(
    gen: &G,
    prop: &(impl Fn(G::Value) -> Result<(), String> + ?Sized),
    mut draws: Vec<u64>,
    mut message: String,
    budget: u32,
) -> (Vec<u64>, String) {
    let mut evals = 0u32;

    // Try one candidate stream; on sustained failure adopt it (trimmed to
    // the draws generation actually consumed) and return true.
    let attempt = |draws: &mut Vec<u64>, message: &mut String, candidate: Vec<u64>| -> bool {
        let mut rng = TestRng::replay(candidate);
        match eval(gen, prop, &mut rng) {
            Some(msg) => {
                *draws = rng.draws().to_vec();
                *message = msg;
                true
            }
            None => false,
        }
    };

    loop {
        let mut improved = false;
        let mut i = 0;
        while i < draws.len() && evals < budget {
            // Zero is the biggest single step: range minimum / first
            // alternative / empty vector.
            if draws[i] != 0 {
                let mut candidate = draws.clone();
                candidate[i] = 0;
                evals += 1;
                if attempt(&mut draws, &mut message, candidate) {
                    improved = true;
                }
            }
            // Halve while that keeps failing.
            while i < draws.len() && draws[i] > 1 && evals < budget {
                let mut candidate = draws.clone();
                candidate[i] /= 2;
                evals += 1;
                if attempt(&mut draws, &mut message, candidate) {
                    improved = true;
                } else {
                    break;
                }
            }
            // Decrement to the exact boundary.
            while i < draws.len() && draws[i] > 0 && evals < budget {
                let mut candidate = draws.clone();
                candidate[i] -= 1;
                evals += 1;
                if attempt(&mut draws, &mut message, candidate) {
                    improved = true;
                } else {
                    break;
                }
            }
            i += 1;
        }
        if !improved || evals >= budget {
            break;
        }
    }
    (draws, message)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declare property tests, proptest-style:
///
/// ```
/// use mlperf_testkit::prop::*;
///
/// mlperf_testkit::properties! {
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
///
/// (In test files, put `#[test]` above each `fn` so the harness picks
/// them up.)
///
/// Each `fn` becomes a `#[test]` that runs the body over generated
/// inputs via [`prop::check`](crate::prop::check). The body may use
/// [`prop_assert!`](crate::prop_assert),
/// [`prop_assert_eq!`](crate::prop_assert_eq), and
/// [`prop_assert_ne!`](crate::prop_assert_ne), and may call helpers
/// returning `Result<(), String>` with `?`.
#[macro_export]
macro_rules! properties {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $gen:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let gen = ($($gen,)+);
                $crate::prop::check(
                    concat!(module_path!(), "::", stringify!($name)),
                    &gen,
                    |($($arg,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )+
    };
}

/// Property-scope assertion: fails the current case (triggering
/// shrinking) instead of aborting the whole property run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Property-scope equality assertion; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{:?} == {:?}` ({}:{})", left, right, file!(), line!(),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{:?} == {:?}`: {}", left, right, format!($($fmt)+),
            ));
        }
    }};
}

/// Property-scope inequality assertion; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assertion failed: `{:?} != {:?}` ({}:{})", left, right, file!(), line!(),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assertion failed: `{:?} != {:?}`: {}", left, right, format!($($fmt)+),
            ));
        }
    }};
}

// Make `use mlperf_testkit::prop::*` bring the macros along, mirroring
// `use proptest::prelude::*`.
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, properties};
