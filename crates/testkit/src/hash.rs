//! FNV-1a — the workspace's one stable, in-tree content hash.
//!
//! Three call sites grew private copies of this function (the executor's
//! retry-stream mapping, the fault study's trace fingerprint, the shard
//! checksum); they now all route here. The persistent artifact cache
//! (`mlperf-core::sweep`) also keys on it, so the constants below are a
//! compatibility contract: the reference vectors in this module pin them.
//!
//! FNV-1a is not cryptographic — it is used for cache addressing, stream
//! splitting, and regression fingerprints, where speed, zero dependencies,
//! and cross-platform stability are what matter.

/// FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
/// FNV-1a 32-bit offset basis.
pub const FNV32_OFFSET: u32 = 0x811c_9dc5;
/// FNV-1a 32-bit prime.
pub const FNV32_PRIME: u32 = 0x0100_0193;

/// FNV-1a, 64-bit, over raw bytes.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

/// FNV-1a, 64-bit, over a string's UTF-8 bytes.
#[must_use]
pub fn fnv1a64_str(s: &str) -> u64 {
    fnv1a64(s.as_bytes())
}

/// FNV-1a, 32-bit, over raw bytes (the shard-checksum width).
#[must_use]
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h = FNV32_OFFSET;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(FNV32_PRIME);
    }
    h
}

/// Incremental FNV-1a 64-bit hasher, for keys assembled from several
/// fields without concatenating into a scratch buffer.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    /// A hasher at the offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a64 {
            state: FNV64_OFFSET,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV64_PRIME);
        }
    }

    /// Absorb a `u64` as little-endian bytes (e.g. a code epoch).
    pub fn write_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_reference_vectors() {
        // Published FNV-1a test vectors (draft-eastlake-fnv).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv1a64_str("foobar"), fnv1a64(b"foobar"));
    }

    #[test]
    fn fnv32_reference_vectors() {
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a32(b"foobar"), 0xbf9c_f968);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv1a64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
        let mut k = Fnv1a64::new();
        k.write_u64(0x0102_0304_0506_0708);
        assert_eq!(
            k.finish(),
            fnv1a64(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01])
        );
    }
}
