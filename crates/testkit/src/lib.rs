//! Deterministic test substrate for the MLPerf-demystified workspace.
//!
//! The paper's methodology rests on reproducible, seeded measurement runs;
//! this crate gives the workspace the same property for its *tests* without
//! reaching for crates.io. Three modules:
//!
//! * [`rng`] — a seedable SplitMix64-seeded xoshiro256++ PRNG with
//!   stream-splitting, so every shard / record / test case draws from an
//!   independent, replayable stream;
//! * [`prop`] — a minimal property-testing harness (generators, a
//!   [`properties!`](crate::properties) macro close to `proptest!`, greedy
//!   draw-stream shrinking, failure-seed reporting);
//! * [`bench`] — a wall-clock micro-bench runner (warmup, N samples,
//!   median/p95, JSON-line output) standing in for `criterion`;
//! * [`fault`] — a seeded-replay draw log ([`fault::FaultScript`]) that
//!   fault-plan generators draw through, so an injected failure scenario
//!   replays byte-identically from its seed;
//! * [`chaos`] — a seeded failure-injection plan ([`chaos::ChaosPlan`])
//!   deciding panic / error / non-finite actions at named draw points,
//!   used to chaos-test the experiment executor's resilience layer;
//! * [`iochaos`] — the storage-side twin ([`iochaos::IoChaosPlan`]):
//!   seeded short writes, torn renames, bit flips, `ENOSPC`, and
//!   unreadable files injected at a persistent store's filesystem seam,
//!   used to prove the artifact cache self-heals under corruption;
//! * [`loadgen`] — seeded client-workload plans (skewed hot-subset draws
//!   over an abstract query vocabulary) for replayable load tests of
//!   long-lived services;
//! * [`hash`] — the workspace's single FNV-1a implementation (64- and
//!   32-bit, with published reference vectors): retry-stream mapping,
//!   trace fingerprints, shard checksums, and the persistent artifact
//!   cache all key on it.
//!
//! The whole workspace builds and tests offline because of this crate: it
//! has **zero dependencies** by design. See DESIGN.md §"Offline build &
//! determinism policy".

pub mod bench;
pub mod chaos;
pub mod fault;
pub mod hash;
pub mod iochaos;
pub mod loadgen;
pub mod prop;
pub mod rng;
