//! Seeded-replay fault scripting: a labeled draw log for deterministic
//! fault injection.
//!
//! A [`FaultScript`] wraps a seeded [`Rng`](crate::rng::Rng) and records
//! every draw together with a short label naming what the draw decided
//! (`"interarrival"`, `"kind"`, `"victim"`, …). The recorded log renders
//! to bytes ([`FaultScript::trace_bytes`]), which gives fault-plan
//! generators a *byte-exact replay contract*: two scripts built from the
//! same seed hand out the same draws in the same order and render the
//! same trace, regardless of who consumes them or on how many worker
//! threads the surrounding experiment runs.
//!
//! The simulator's `FaultPlan` draws through this type, and the property
//! suites shrink on the same draw stream the script records — a failing
//! fault scenario minimizes to the fewest, earliest, smallest draws that
//! still break the property.

use crate::rng::Rng;

/// One recorded draw: the label the consumer gave it and the raw word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptDraw {
    /// What the draw decided (static so logs stay allocation-light).
    pub label: &'static str,
    /// The raw 64-bit draw handed out.
    pub value: u64,
}

/// A seeded, self-recording draw source for fault-plan generation.
///
/// # Examples
///
/// ```
/// use mlperf_testkit::fault::FaultScript;
///
/// let mut a = FaultScript::new(7);
/// let mut b = FaultScript::new(7);
/// assert_eq!(a.draw("kind"), b.draw("kind"));
/// assert_eq!(a.trace_bytes(), b.trace_bytes());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultScript {
    seed: u64,
    rng: Rng,
    log: Vec<ScriptDraw>,
}

impl FaultScript {
    /// A fresh script for `seed`. Equal seeds yield byte-identical draw
    /// sequences and traces.
    pub fn new(seed: u64) -> Self {
        FaultScript {
            seed,
            rng: Rng::stream(seed, 0xFA01),
            log: Vec::new(),
        }
    }

    /// The seed this script replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The next raw 64-bit draw, recorded under `label`.
    pub fn draw(&mut self, label: &'static str) -> u64 {
        let value = self.rng.gen_u64();
        self.log.push(ScriptDraw { label, value });
        value
    }

    /// A uniform draw in `[0, 1)`, recorded under `label`.
    pub fn draw_unit(&mut self, label: &'static str) -> f64 {
        (self.draw(label) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`, recorded under `label`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn draw_index(&mut self, label: &'static str, n: usize) -> usize {
        assert!(n > 0, "draw_index over an empty choice");
        (self.draw(label) % n as u64) as usize
    }

    /// An exponentially distributed draw with the given mean (inverse-CDF
    /// over a unit draw), recorded under `label`. The fault-plan
    /// inter-arrival primitive.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn draw_exponential(&mut self, label: &'static str, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive"
        );
        // 1 - u in (0, 1]: ln never sees zero.
        let u = self.draw_unit(label);
        -mean * (1.0 - u).ln()
    }

    /// Every draw handed out so far, in order.
    pub fn draws(&self) -> &[ScriptDraw] {
        &self.log
    }

    /// Render the draw log to bytes: one `label=value` line per draw,
    /// preceded by the seed. Byte-identical across replays of one seed.
    pub fn trace_bytes(&self) -> Vec<u8> {
        let mut out = format!("seed={:#018x}\n", self.seed);
        for d in &self.log {
            out.push_str(&format!("{}={:#018x}\n", d.label, d.value));
        }
        out.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_replay_byte_identically() {
        let mut a = FaultScript::new(42);
        let mut b = FaultScript::new(42);
        for _ in 0..10 {
            assert_eq!(a.draw("x"), b.draw("x"));
        }
        assert_eq!(a.trace_bytes(), b.trace_bytes());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultScript::new(1);
        let mut b = FaultScript::new(2);
        let xs: Vec<u64> = (0..4).map(|_| a.draw("x")).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.draw("x")).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn exponential_draws_are_positive_with_sane_mean() {
        let mut s = FaultScript::new(9);
        let n = 4096;
        let total: f64 = (0..n).map(|_| s.draw_exponential("dt", 10.0)).sum();
        let mean = total / n as f64;
        assert!(mean > 8.0 && mean < 12.0, "sample mean {mean}");
        assert_eq!(s.draws().len(), n);
    }

    #[test]
    fn trace_names_every_label() {
        let mut s = FaultScript::new(5);
        s.draw("interarrival");
        s.draw_index("victim", 4);
        let text = String::from_utf8(s.trace_bytes()).unwrap();
        assert!(text.starts_with("seed="));
        assert!(text.contains("interarrival=") && text.contains("victim="));
    }
}
