//! Seeded client-workload generation for load-testing query services.
//!
//! A load test is only a regression test if the offered load replays
//! exactly; this module turns a seed into per-client query plans the same
//! way [`fault`](crate::fault) turns a seed into a failure scenario. The
//! generator is deliberately *abstract*: it produces indices into a
//! caller-supplied vocabulary (this crate knows nothing about query
//! schemas — the dependency points the other way), with a skewed
//! hot-subset access pattern so a realistic mix hammers a few popular
//! queries from many clients at once. That overlap is what exercises
//! request coalescing: with `clients × queries` draws over a small hot
//! set, most draws collide across clients by construction.
//!
//! Determinism contract: a plan is a pure function of
//! `(spec, seed, client)`. Each client draws from its own
//! [`Rng::stream`], so plans are independent of client *scheduling* —
//! thread interleaving at replay time cannot change what any client asks.

use crate::rng::Rng;

/// Shape of a seeded client workload over an abstract query vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSpec {
    /// Vocabulary size: plans index `0..vocab`.
    pub vocab: usize,
    /// Size of the hot subset (clamped to `vocab`).
    pub hot: usize,
    /// Percent of draws taken from the hot subset (0–100).
    pub hot_pct: u32,
    /// Queries per client.
    pub queries: usize,
}

impl LoadSpec {
    /// The seeded hot subset: a fixed-per-seed selection of distinct
    /// vocabulary indices, shared by every client of that seed (the
    /// sharing is the point — cross-client collisions on the hot set are
    /// what a coalescing layer must absorb).
    pub fn hot_set(&self, seed: u64) -> Vec<usize> {
        let mut all: Vec<usize> = (0..self.vocab).collect();
        // A dedicated stream index no client uses (clients use their own
        // ordinal), so growing the client count never re-deals the deck.
        Rng::stream(seed, u64::MAX).shuffle(&mut all);
        all.truncate(self.hot.min(self.vocab));
        all
    }

    /// One client's full query plan: `queries` indices into the
    /// vocabulary, `hot_pct` percent of them drawn from the seed's hot
    /// subset. Pure in `(self, seed, client)`.
    pub fn client_plan(&self, seed: u64, client: u64) -> Vec<usize> {
        assert!(self.vocab > 0, "empty vocabulary");
        assert!(self.hot_pct <= 100, "hot_pct is a percentage");
        let hot = self.hot_set(seed);
        let mut rng = Rng::stream(seed, client);
        (0..self.queries)
            .map(|_| {
                if !hot.is_empty() && rng.gen_range(0u64..100) < u64::from(self.hot_pct) {
                    *rng.sample(&hot)
                } else {
                    rng.gen_range(0..self.vocab as u64) as usize
                }
            })
            .collect()
    }

    /// Every client's plan, client `0..clients` in order.
    pub fn plans(&self, seed: u64, clients: u64) -> Vec<Vec<usize>> {
        (0..clients).map(|c| self.client_plan(seed, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: LoadSpec = LoadSpec {
        vocab: 200,
        hot: 8,
        hot_pct: 75,
        queries: 500,
    };

    #[test]
    fn plans_replay_exactly_and_differ_across_clients_and_seeds() {
        let a = SPEC.client_plan(42, 3);
        assert_eq!(a, SPEC.client_plan(42, 3), "same (seed, client) must replay");
        assert_ne!(a, SPEC.client_plan(42, 4), "clients draw independent streams");
        assert_ne!(a, SPEC.client_plan(43, 3), "seeds re-deal the workload");
        assert_eq!(a.len(), SPEC.queries);
        assert!(a.iter().all(|&i| i < SPEC.vocab));
    }

    #[test]
    fn hot_subset_concentrates_the_draws() {
        let hot = SPEC.hot_set(42);
        assert_eq!(hot.len(), SPEC.hot);
        let plan = SPEC.client_plan(42, 0);
        let in_hot = plan.iter().filter(|i| hot.contains(i)).count();
        // 75% targeted plus cold draws that land in the hot set by
        // chance; far above uniform (8/200 = 4%) either way.
        assert!(
            in_hot * 100 >= plan.len() * 60,
            "expected skew toward the hot set, got {in_hot}/{}",
            plan.len()
        );
    }

    #[test]
    fn hot_set_is_shared_across_clients_and_stable_in_client_count() {
        assert_eq!(SPEC.hot_set(7), SPEC.hot_set(7));
        let plans = SPEC.plans(7, 4);
        assert_eq!(plans.len(), 4);
        assert_eq!(plans[2], SPEC.client_plan(7, 2), "plans() is just the per-client map");
    }
}
