//! Self-tests for the test substrate itself: PRNG reference vectors,
//! `gen_range` bound semantics, and shrinking behaviour.
//!
//! The reference vectors were computed from an independent (big-integer,
//! Python) implementation of the published SplitMix64 and xoshiro256++
//! algorithms; the first SplitMix64 output for seed 0
//! (`0xE220A8397B1DCDAF`) also matches the widely circulated C test
//! vector. If any of these tests fail, the byte streams under every
//! seeded test and synthetic dataset in the workspace have drifted.

use mlperf_testkit::prop::{self, *};
use mlperf_testkit::rng::{mix64, splitmix64, Rng};

// ---------------------------------------------------------------------------
// rng: reference vectors
// ---------------------------------------------------------------------------

#[test]
fn splitmix64_matches_reference_vectors() {
    let mut s = 0u64;
    let outs: Vec<u64> = (0..5).map(|_| splitmix64(&mut s)).collect();
    assert_eq!(
        outs,
        [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ]
    );

    let mut s = 0x0123_4567_89AB_CDEFu64;
    let outs: Vec<u64> = (0..5).map(|_| splitmix64(&mut s)).collect();
    assert_eq!(
        outs,
        [
            0x157A_3807_A48F_AA9D,
            0xD573_529B_34A1_D093,
            0x2F90_B72E_996D_CCBE,
            0xA2D4_1933_4C46_67EC,
            0x0140_4CE9_1493_8008,
        ]
    );
}

#[test]
fn xoshiro256pp_matches_reference_vectors() {
    let mut rng = Rng::new(0);
    let outs: Vec<u64> = (0..5).map(|_| rng.gen_u64()).collect();
    assert_eq!(
        outs,
        [
            0x5317_5D61_490B_23DF,
            0x61DA_6F3D_C380_D507,
            0x5C0F_DF91_EC9A_7BFC,
            0x02EE_BF8C_3BBE_5E1A,
            0x7ECA_04EB_AF4A_5EEA,
        ]
    );

    let mut rng = Rng::new(42);
    let outs: Vec<u64> = (0..5).map(|_| rng.gen_u64()).collect();
    assert_eq!(
        outs,
        [
            0xD076_4D4F_4476_689F,
            0x519E_4174_576F_3791,
            0xFBE0_7CFB_0C24_ED8C,
            0xB37D_9F60_0CD8_35B8,
            0xCB23_1C38_7484_6A73,
        ]
    );
}

#[test]
fn fill_bytes_is_the_le_word_stream() {
    let mut words = Rng::new(9);
    let mut bytes = Rng::new(9);
    let mut buf = [0u8; 20];
    bytes.fill_bytes(&mut buf);
    assert_eq!(buf[0..8], words.gen_u64().to_le_bytes());
    assert_eq!(buf[8..16], words.gen_u64().to_le_bytes());
    assert_eq!(buf[16..20], words.gen_u64().to_le_bytes()[..4]);
}

// ---------------------------------------------------------------------------
// rng: gen_range bound semantics
// ---------------------------------------------------------------------------

#[test]
fn gen_range_half_open_excludes_end_and_reaches_both_bounds() {
    let mut rng = Rng::new(1);
    let mut seen = [false; 2];
    for _ in 0..256 {
        let v = rng.gen_range(10u64..12);
        assert!((10..12).contains(&v), "half-open draw {v} out of [10, 12)");
        seen[(v - 10) as usize] = true;
    }
    assert!(seen.iter().all(|&s| s), "both representable values drawn");
}

#[test]
fn gen_range_inclusive_reaches_its_end() {
    let mut rng = Rng::new(2);
    let mut saw_end = false;
    for _ in 0..256 {
        let v = rng.gen_range(0u64..=1);
        assert!(v <= 1);
        saw_end |= v == 1;
    }
    assert!(saw_end, "inclusive range must produce its upper bound");

    // Degenerate inclusive range: only one value.
    assert_eq!(rng.gen_range(7usize..=7), 7);
}

#[test]
fn gen_range_covers_signed_and_float_domains() {
    let mut rng = Rng::new(3);
    for _ in 0..256 {
        let v = rng.gen_range(-5i64..5);
        assert!((-5..5).contains(&v));
        let f = rng.gen_range(-1.5f64..2.5);
        assert!((-1.5..2.5).contains(&f));
        let u = rng.gen_f64();
        assert!((0.0..1.0).contains(&u));
    }
}

#[test]
#[should_panic(expected = "empty range")]
fn gen_range_rejects_empty_ranges() {
    let mut rng = Rng::new(4);
    let _ = rng.gen_range(5u64..5);
}

#[test]
fn shuffle_permutes_and_sample_stays_in_bounds() {
    let mut rng = Rng::new(5);
    let mut xs: Vec<u32> = (0..100).collect();
    rng.shuffle(&mut xs);
    let mut sorted = xs.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    assert_ne!(xs, sorted, "a 100-element shuffle virtually never fixes");

    let mut replay = Rng::new(5);
    let mut ys: Vec<u32> = (0..100).collect();
    replay.shuffle(&mut ys);
    assert_eq!(xs, ys, "same seed, same permutation");

    for _ in 0..32 {
        assert!(xs.contains(rng.sample(&xs)));
    }
}

// ---------------------------------------------------------------------------
// prop: generators and shrinking
// ---------------------------------------------------------------------------

fn small_config() -> Config {
    Config {
        cases: 128,
        seed: 0xDEAD_BEEF,
        max_shrink_evals: 4096,
    }
}

#[test]
fn shrinking_reaches_the_minimal_integer_counterexample() {
    let failure = prop::find_failure(&small_config(), &(0u64..1000), &|x| {
        if x < 10 {
            Ok(())
        } else {
            Err(format!("{x} >= 10"))
        }
    })
    .expect("the property fails for 990 of 1000 values");
    assert_eq!(
        failure.minimal, 10,
        "greedy zero/halve/decrement must land exactly on the boundary"
    );
}

#[test]
fn shrinking_reaches_the_minimal_vector_counterexample() {
    let gen = vec_of(0u64..100, 0usize..20);
    let failure = prop::find_failure(&small_config(), &gen, &|v| {
        if v.len() < 3 {
            Ok(())
        } else {
            Err(format!("len {}", v.len()))
        }
    })
    .expect("vectors of length >= 3 are common");
    assert_eq!(
        failure.minimal,
        vec![0, 0, 0],
        "length shrinks to the boundary and every element to the range start"
    );
}

#[test]
fn shrinking_holds_the_failure_while_minimizing() {
    // Failure requires *both* a long vector and a large element; the
    // shrinker must not lose one condition while minimizing the other.
    let gen = vec_of(0u64..1000, 0usize..12);
    let failure = prop::find_failure(&small_config(), &gen, &|v| {
        if v.len() >= 2 && v.iter().any(|&x| x >= 500) {
            Err("long with a large element".to_string())
        } else {
            Ok(())
        }
    })
    .expect("failing inputs are common");
    assert_eq!(failure.minimal.len(), 2);
    let large: Vec<u64> = failure.minimal.iter().copied().filter(|&x| x >= 500).collect();
    assert_eq!(large, vec![500], "the witness element shrinks to the boundary");
    assert!(
        failure.minimal.iter().filter(|&&x| x < 500).all(|&x| x == 0),
        "non-witness elements shrink to the range start: {:?}",
        failure.minimal
    );
}

#[test]
fn find_failure_reports_a_replayable_seed() {
    let failure =
        prop::find_failure(&small_config(), &(0u64..1000), &|x| {
            if x < 990 {
                Ok(())
            } else {
                Err("big".to_string())
            }
        })
        .expect("1% of cases fail");
    // Re-running with the reported seed must fail at case 0.
    let replay = Config {
        seed: failure.seed,
        ..small_config()
    };
    let again = prop::find_failure(&replay, &(0u64..1000), &|x| {
        if x < 990 {
            Ok(())
        } else {
            Err("big".to_string())
        }
    })
    .expect("replay still fails");
    assert_eq!(again.case, 0, "the reported seed replays the case first");
    assert_eq!(again.minimal, failure.minimal);
}

#[test]
fn panics_inside_properties_count_as_failures_and_shrink() {
    let failure = prop::find_failure(&small_config(), &(0u64..1000), &|x| {
        assert!(x < 10, "boom at {x}");
        Ok(())
    })
    .expect("panicking property fails");
    assert_eq!(failure.minimal, 10);
    assert!(failure.message.contains("boom"), "panic text is preserved");
}

#[test]
fn composed_generators_cover_their_stated_domains() {
    let mut rng = TestRng::fresh(11);
    let gen = one_of(vec![
        (0u64..10).prop_map(|x| x as i64).boxed(),
        (100u64..110).prop_map(|x| x as i64).boxed(),
        just(-1i64).boxed(),
    ]);
    let mut buckets = [false; 3];
    for _ in 0..256 {
        match gen.generate(&mut rng) {
            0..=9 => buckets[0] = true,
            100..=109 => buckets[1] = true,
            -1 => buckets[2] = true,
            other => panic!("generator escaped its domain: {other}"),
        }
    }
    assert!(buckets.iter().all(|&b| b), "every alternative is reachable");

    let pairs = vec_of((0usize..4).prop_flat_map(|n| (just(n), 0u64..=9)), 1usize..5);
    for _ in 0..64 {
        for (n, v) in pairs.generate(&mut rng) {
            assert!(n < 4 && v <= 9);
        }
    }
    let picked = elements(&[2u32, 4, 6]);
    for _ in 0..32 {
        assert!([2, 4, 6].contains(&picked.generate(&mut rng)));
    }
}

#[test]
fn generation_is_deterministic_per_seed() {
    let gen = vec_of(0u64..1_000_000, 0usize..32);
    let a = gen.generate(&mut TestRng::fresh(77));
    let b = gen.generate(&mut TestRng::fresh(77));
    assert_eq!(a, b);
    let c = gen.generate(&mut TestRng::fresh(78));
    assert_ne!(a, c);
}

#[test]
fn case_seeds_walk_deterministically() {
    // The runner chains case seeds through mix64; pin the walk so a
    // reported seed stays meaningful across releases.
    assert_eq!(mix64(mix64(1)), mix64(mix64(1)));
    assert_ne!(mix64(1), mix64(2));
}

// The macro facade: a passing property runs silently, a failing one
// panics with a minimal input.

mlperf_testkit::properties! {
    #[test]
    fn macro_addition_commutes(a in 0u64..1 << 32, b in 0u64..1 << 32) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn macro_vectors_round_trip(xs in vec_of(-1e6f64..1e6, 0usize..40)) {
        let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
        let halved: Vec<f64> = doubled.iter().map(|x| x / 2.0).collect();
        prop_assert_eq!(xs, halved);
    }
}

#[test]
#[should_panic(expected = "minimal input")]
fn macro_failures_panic_with_the_minimal_input() {
    mlperf_testkit::properties! {
        fn inner_always_fails(x in 0u64..100) {
            prop_assert!(x > 100, "x = {x} never exceeds 100");
        }
    }
    inner_always_fails();
}
